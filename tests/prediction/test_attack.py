"""Tests for the attack simulator."""

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.exceptions import PredictionError
from repro.graphs.graph import Graph
from repro.prediction.attack import AttackSimulator, sample_non_edges


class TestSampleNonEdges:
    def test_samples_are_non_edges(self):
        graph = small_social_graph(seed=1)
        samples = sample_non_edges(graph, 50, seed=0)
        assert len(samples) == 50
        assert all(not graph.has_edge(u, v) for u, v in samples)

    def test_excludes_requested_pairs(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        excluded = [(0, 2)]
        samples = sample_non_edges(graph, 2, seed=0, exclude=excluded)
        assert (0, 2) not in samples

    def test_no_duplicates(self):
        graph = small_social_graph(seed=1)
        samples = sample_non_edges(graph, 100, seed=3)
        assert len(samples) == len(set(samples))

    def test_tiny_graph(self):
        assert sample_non_edges(Graph(nodes=[1]), 5, seed=0) == []


class TestAttackSimulator:
    def test_requires_targets(self):
        simulator = AttackSimulator("common_neighbors")
        with pytest.raises(PredictionError):
            simulator.run(Graph(edges=[(0, 1)]), [])

    def test_invalid_negative_samples(self):
        with pytest.raises(PredictionError):
            AttackSimulator(negative_samples=0)

    def test_unprotected_targets_are_exposed(self):
        graph = small_social_graph(seed=2)
        targets = sample_random_targets(graph, 5, seed=0)
        problem = TPPProblem(graph, targets, motif="triangle")
        simulator = AttackSimulator("common_neighbors", negative_samples=100, seed=1)
        report = simulator.run(problem.phase1_graph, targets)
        # clustered graph: most sampled targets keep at least one common neighbor
        assert report.auc > 0.5
        assert len(report.exposed_targets) >= 1

    def test_protection_reduces_attack_success(self):
        graph = small_social_graph(seed=2)
        targets = sample_random_targets(graph, 5, seed=0)
        problem = TPPProblem(graph, targets, motif="triangle")
        result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
        assert result.fully_protected

        simulator = AttackSimulator("common_neighbors", negative_samples=100, seed=1)
        before = simulator.run(problem.phase1_graph, targets)
        after = simulator.run(result.released_graph(problem), targets)
        assert after.auc <= before.auc
        assert after.fully_defended
        assert all(score == 0 for score in after.target_scores.values())

    def test_full_triangle_protection_defends_whole_index_family(self):
        """§VI-D: a fully protected graph defends Jaccard/AA/RA/... too."""
        graph = small_social_graph(seed=4)
        targets = sample_random_targets(graph, 4, seed=1)
        problem = TPPProblem(graph, targets, motif="triangle")
        result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
        released = result.released_graph(problem)
        for predictor in ("jaccard", "adamic_adar", "resource_allocation", "salton"):
            report = AttackSimulator(predictor, negative_samples=50, seed=0).run(
                released, targets
            )
            assert report.fully_defended

    def test_precision_at_k_bounds(self):
        graph = small_social_graph(seed=5)
        targets = sample_random_targets(graph, 3, seed=2)
        problem = TPPProblem(graph, targets, motif="triangle")
        simulator = AttackSimulator("common_neighbors", negative_samples=50, seed=2)
        report = simulator.run(problem.phase1_graph, targets, ks=(1, 5, 10))
        assert set(report.precision_at_k) == {1, 5, 10}
        assert all(0.0 <= value <= 1.0 for value in report.precision_at_k.values())

    def test_report_summary_mentions_predictor(self):
        graph = small_social_graph(seed=5)
        targets = sample_random_targets(graph, 3, seed=2)
        simulator = AttackSimulator("jaccard", negative_samples=20, seed=0)
        report = simulator.run(graph.without_edges(targets), targets)
        assert "jaccard" in report.summary()

    def test_explicit_negative_pool(self):
        graph = Graph(edges=[(0, 2), (1, 2), (3, 4)])
        simulator = AttackSimulator("common_neighbors", negative_samples=5, seed=0)
        report = simulator.run(graph, [(0, 1)], non_edges=[(0, 3), (2, 4)])
        assert report.auc == 1.0  # the target has a common neighbor, negatives do not
