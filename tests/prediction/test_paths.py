"""Tests for path-based indices (Katz, Local Path)."""

import pytest

from repro.exceptions import PredictorConfigError
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.prediction.paths import (
    KatzPredictor,
    LocalPathPredictor,
    katz_index,
    local_path_index,
    path_counts,
)


class TestPathCounts:
    def test_counts_on_path_graph(self):
        graph = path_graph(4)  # 0-1-2-3
        counts = path_counts(graph, 0, 3, max_length=4)
        assert counts[1] == 0
        assert counts[2] == 0
        assert counts[3] == 1

    def test_walks_not_simple_paths(self):
        graph = Graph(edges=[(0, 1)])
        counts = path_counts(graph, 0, 1, max_length=3)
        # length-3 walk 0-1-0-1 exists
        assert counts[1] == 1
        assert counts[3] == 1

    def test_two_parallel_two_paths(self):
        graph = Graph(edges=[(0, 2), (2, 1), (0, 3), (3, 1)])
        assert path_counts(graph, 0, 1, max_length=2)[2] == 2

    def test_missing_nodes(self):
        graph = Graph(edges=[(0, 1)])
        assert path_counts(graph, 0, 99)[2] == 0


class TestKatz:
    def test_direct_edge_dominates(self):
        graph = cycle_graph(6)
        direct = katz_index(graph, 0, 1, beta=0.1)
        distant = katz_index(graph, 0, 3, beta=0.1)
        assert direct > distant

    def test_zero_when_disconnected(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        assert katz_index(graph, 0, 3, beta=0.1, max_length=4) == 0.0

    def test_beta_validation(self):
        with pytest.raises(PredictorConfigError):
            KatzPredictor(beta=0.0)
        with pytest.raises(PredictorConfigError):
            KatzPredictor(max_length=1)

    def test_predictor_matches_function(self):
        graph = cycle_graph(5)
        predictor = KatzPredictor(beta=0.05, max_length=4)
        assert predictor.score(graph, 0, 2) == pytest.approx(
            katz_index(graph, 0, 2, beta=0.05, max_length=4)
        )


class TestLocalPath:
    def test_two_paths_weighted_more_than_three_paths(self):
        graph = Graph(edges=[(0, 2), (2, 1), (0, 3), (3, 4), (4, 1)])
        value = local_path_index(graph, 0, 1, epsilon=0.01)
        assert value == pytest.approx(1 + 0.01 * 1)

    def test_predictor_registered(self):
        from repro.prediction.base import get_predictor

        predictor = get_predictor("local_path")
        assert isinstance(predictor, LocalPathPredictor)
