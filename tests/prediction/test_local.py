"""Tests for the classic local similarity indices."""

import math

import pytest

from repro.graphs.graph import Graph
from repro.prediction.local import (
    adamic_adar_index,
    common_neighbors_index,
    hub_depressed_index,
    hub_promoted_index,
    jaccard_index,
    leicht_holme_newman_index,
    resource_allocation_index,
    salton_index,
    sorensen_index,
)


@pytest.fixture
def fig7_graph():
    """The graph of the paper's Fig. 7 discussion.

    Target (u, v); u has neighbors {1, 2, 3}; v has neighbors {2, 3, 4};
    common neighbors {2, 3}; degrees d_u = 3, d_v = 3 once the target link is
    absent... here we model the released graph (target absent).
    """
    return Graph(edges=[("u", 1), ("u", 2), ("u", 3), ("v", 2), ("v", 3), ("v", 4)])


class TestIndexValues:
    def test_common_neighbors(self, fig7_graph):
        assert common_neighbors_index(fig7_graph, "u", "v") == 2.0

    def test_jaccard(self, fig7_graph):
        # |common| = 2, |union| = 4
        assert jaccard_index(fig7_graph, "u", "v") == pytest.approx(0.5)

    def test_salton(self, fig7_graph):
        assert salton_index(fig7_graph, "u", "v") == pytest.approx(2 / 3)

    def test_sorensen(self, fig7_graph):
        assert sorensen_index(fig7_graph, "u", "v") == pytest.approx(2 * 2 / 6)

    def test_hub_promoted_and_depressed(self, fig7_graph):
        fig7_graph.add_edge("u", 9)  # now d_u = 4, d_v = 3
        assert hub_promoted_index(fig7_graph, "u", "v") == pytest.approx(2 / 3)
        assert hub_depressed_index(fig7_graph, "u", "v") == pytest.approx(2 / 4)

    def test_lhn(self, fig7_graph):
        assert leicht_holme_newman_index(fig7_graph, "u", "v") == pytest.approx(2 / 9)

    def test_adamic_adar(self, fig7_graph):
        # common neighbors 2 and 3 have degree 2 each
        expected = 2.0 / math.log(2)
        assert adamic_adar_index(fig7_graph, "u", "v") == pytest.approx(expected)

    def test_resource_allocation(self, fig7_graph):
        assert resource_allocation_index(fig7_graph, "u", "v") == pytest.approx(1.0)


class TestEdgeCases:
    def test_no_common_neighbors_scores_zero(self):
        graph = Graph(edges=[(0, 2), (1, 3)])
        for index in (
            common_neighbors_index,
            jaccard_index,
            salton_index,
            sorensen_index,
            hub_promoted_index,
            hub_depressed_index,
            leicht_holme_newman_index,
            adamic_adar_index,
            resource_allocation_index,
        ):
            assert index(graph, 0, 1) == 0.0

    def test_missing_nodes_score_zero(self):
        graph = Graph(edges=[(0, 1)])
        assert jaccard_index(graph, 0, 99) == 0.0
        assert common_neighbors_index(graph, 98, 99) == 0.0

    def test_adamic_adar_skips_degree_one_common_neighbor(self):
        # common neighbor 2 has degree 2 -> contributes; make another common
        # neighbor of degree exactly 1 impossible (it must touch both ends),
        # so instead check a degree-2 corner: log(2) != 0
        graph = Graph(edges=[(0, 2), (1, 2)])
        assert adamic_adar_index(graph, 0, 1) == pytest.approx(1 / math.log(2))

    def test_full_protection_zeroes_every_triangle_index(self):
        """§VI-D: once no common neighbor survives, every triangle-based
        prediction index is zero for the target."""
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        protected = graph.without_edges([(0, 2), (0, 3)])  # break both triangles
        for index in (
            common_neighbors_index,
            jaccard_index,
            salton_index,
            sorensen_index,
            hub_promoted_index,
            hub_depressed_index,
            leicht_holme_newman_index,
            adamic_adar_index,
            resource_allocation_index,
        ):
            assert index(protected, 0, 1) == 0.0


class TestPredictorClasses:
    def test_registry_contains_all_indices(self):
        from repro.prediction.base import available_predictors

        names = set(available_predictors())
        assert {
            "common_neighbors",
            "jaccard",
            "salton",
            "sorensen",
            "hub_promoted",
            "hub_depressed",
            "lhn",
            "adamic_adar",
            "resource_allocation",
        } <= names

    def test_predictor_matches_function(self, fig7_graph):
        from repro.prediction.base import get_predictor

        predictor = get_predictor("jaccard")
        assert predictor.score(fig7_graph, "u", "v") == pytest.approx(
            jaccard_index(fig7_graph, "u", "v")
        )

    def test_rank_orders_by_score(self, fig7_graph):
        from repro.prediction.base import get_predictor

        predictor = get_predictor("common_neighbors")
        ranking = predictor.rank(fig7_graph, [("u", "v"), (1, 4)])
        assert ranking[0][0] == ("u", "v")

    def test_unknown_predictor(self):
        from repro.exceptions import PredictionError
        from repro.prediction.base import get_predictor

        with pytest.raises(PredictionError):
            get_predictor("crystal_ball")
