"""Tests for delta snapshots: persisted graph updates tied to a parent state.

Covers the PR's acceptance guarantees:

* round trips — save -> load restores the exact operation list and the
  parent/result content hashes of the states the delta bridges,
* refusal — applying a delta snapshot to any state other than its recorded
  parent raises :class:`~repro.exceptions.SnapshotMismatchError` before the
  session is touched, and corrupted/truncated/alien files raise
  :class:`~repro.exceptions.SnapshotFormatError`,
* service integration — ``ProtectionService.apply_delta`` accepts a loaded
  :class:`~repro.persistence.DeltaSnapshot` and verifies its parent hash,
* ``verify_snapshot_file`` dispatches on the magic marker and validates
  both file kinds without constructing an index.
"""

from __future__ import annotations

import pytest

from repro.core.model import TPPProblem
from repro.datasets.targets import sample_random_targets
from repro.exceptions import SnapshotFormatError, SnapshotMismatchError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import Graph, canonical_edge
from repro.motifs.enumeration import TargetSubgraphIndex
from repro.motifs.updates import EdgeDelta
from repro.persistence import (
    DELTA_MAGIC,
    index_content_hash,
    load_delta_snapshot,
    save_delta_snapshot,
    save_snapshot,
    verify_snapshot_file,
)
from repro.service import ProtectionRequest, ProtectionService


@pytest.fixture
def graph():
    return powerlaw_cluster_graph(160, 3, 0.5, seed=9)


@pytest.fixture
def targets(graph):
    return sample_random_targets(graph, 4, seed=4)


@pytest.fixture
def problem(graph, targets):
    return TPPProblem(graph, targets, motif="triangle")


def make_delta(problem, count=2):
    """Delete ``count`` non-target phase-1 edges and insert two new ones."""
    phase1 = problem.phase1_graph
    target_set = {canonical_edge(*target) for target in problem.targets}
    deletions = [
        canonical_edge(*edge)
        for edge in sorted(phase1.edges())
        if canonical_edge(*edge) not in target_set
    ][:count]
    nodes = sorted(phase1.nodes())
    insertions = []
    for u in nodes:
        for v in nodes[::-1]:
            edge = canonical_edge(u, v)
            if (
                u != v
                and edge not in target_set
                and not phase1.has_edge(u, v)
                and edge not in insertions
            ):
                insertions.append(edge)
                break
        if len(insertions) == 2:
            break
    return EdgeDelta.from_edges(insert=insertions, delete=deletions)


def saved_delta(tmp_path, problem, name="update.tppdelta"):
    """Build the index, apply a delta, persist it; return all three states."""
    parent = problem.build_index()
    delta = make_delta(problem)
    outcome = parent.apply_delta(delta)
    path = save_delta_snapshot(tmp_path / name, delta, parent, outcome.index)
    return path, delta, parent, outcome.index


class TestRoundTrip:
    def test_restores_operations_and_hashes(self, tmp_path, problem):
        path, delta, parent, result = saved_delta(tmp_path, problem)
        snapshot = load_delta_snapshot(path)
        assert snapshot.delta == delta
        assert snapshot.delta.operations == delta.operations
        assert snapshot.parent_content_hash == index_content_hash(parent)
        assert snapshot.result_content_hash == index_content_hash(result)
        assert snapshot.header["op_codec"] == "json"
        assert snapshot.header["counts"] == {
            "operations": len(delta.operations),
            "inserts": 2,
            "deletes": 2,
        }

    def test_parent_and_result_verification_pass(self, tmp_path, problem):
        path, delta, parent, result = saved_delta(tmp_path, problem)
        snapshot = load_delta_snapshot(path)
        assert snapshot.matches_parent(parent)
        snapshot.verify_parent(parent)
        snapshot.verify_result(result)
        assert snapshot.delta_for(parent) == delta

    def test_replay_lands_on_the_recorded_result(self, tmp_path, problem):
        path, _, parent, _ = saved_delta(tmp_path, problem)
        snapshot = load_delta_snapshot(path)
        replayed = parent.apply_delta(snapshot.delta_for(parent)).index
        snapshot.verify_result(replayed)


class TestMismatchRefusal:
    def test_wrong_parent_state_is_refused(self, tmp_path, problem):
        path, _, parent, result = saved_delta(tmp_path, problem)
        snapshot = load_delta_snapshot(path)
        assert not snapshot.matches_parent(result)
        with pytest.raises(SnapshotMismatchError):
            snapshot.verify_parent(result)
        with pytest.raises(SnapshotMismatchError):
            snapshot.delta_for(result)

    def test_wrong_result_state_is_refused(self, tmp_path, problem):
        path, _, parent, _ = saved_delta(tmp_path, problem)
        snapshot = load_delta_snapshot(path)
        with pytest.raises(SnapshotMismatchError):
            snapshot.verify_result(parent)


class TestServiceIntegration:
    def test_service_applies_a_delta_snapshot(self, tmp_path, graph, targets):
        service = ProtectionService(graph, targets, motif="triangle")
        path, delta, parent, result = saved_delta(
            tmp_path, service.problem
        )
        outcome = service.apply_delta(load_delta_snapshot(path))
        assert outcome.edges_inserted == 2 and outcome.edges_deleted == 2
        assert service.deltas_applied == 1
        # the session now serves the recorded result state
        load_delta_snapshot(path).verify_result(
            service.problem.build_index()
        )
        request = ProtectionRequest("SGB-Greedy", 5)
        updated = graph.copy()
        for u, v in delta.deleted:
            updated.remove_edge(u, v)
        for u, v in delta.inserted:
            updated.add_edge(u, v)
        fresh = ProtectionService(
            TPPProblem(
                updated,
                targets,
                motif="triangle",
                constant=service.problem.constant,
            )
        )
        assert service.solve(request).protectors == fresh.solve(request).protectors

    def test_service_refuses_a_mismatched_parent(self, tmp_path, graph, targets):
        service = ProtectionService(graph, targets, motif="triangle")
        path, _, _, _ = saved_delta(tmp_path, service.problem)
        snapshot = load_delta_snapshot(path)
        service.apply_delta(snapshot)  # moves the session past the parent
        with pytest.raises(SnapshotMismatchError):
            service.apply_delta(snapshot)  # stale: parent hash no longer matches
        assert service.deltas_applied == 1


class TestPickleCodec:
    @pytest.fixture
    def tuple_problem(self):
        graph = Graph()
        nodes = [("n", i) for i in range(6)]
        graph.add_nodes_from(nodes)
        target = (nodes[0], nodes[1])
        for w in nodes[2:5]:
            graph.add_edge(nodes[0], w)
            graph.add_edge(nodes[1], w)
        graph.add_edge(*target)
        return TPPProblem(graph, [target], motif="triangle")

    def test_non_json_labels_fall_back_to_pickle(self, tmp_path, tuple_problem):
        parent = tuple_problem.build_index()
        delta = EdgeDelta.deleting((("n", 0), ("n", 4)))
        outcome = parent.apply_delta(delta)
        path = save_delta_snapshot(
            tmp_path / "tuples.tppdelta", delta, parent, outcome.index
        )
        snapshot = load_delta_snapshot(path)
        assert snapshot.header["op_codec"] == "pickle"
        assert snapshot.delta == delta
        with pytest.raises(SnapshotFormatError):
            load_delta_snapshot(path, allow_pickle=False)
        # verification never executes pickle but still checks the envelope
        assert verify_snapshot_file(path)["kind"] == "delta"


class TestVerifySnapshotFile:
    def test_reports_a_delta_file(self, tmp_path, problem):
        path, delta, parent, result = saved_delta(tmp_path, problem)
        report = verify_snapshot_file(path)
        assert report["kind"] == "delta"
        assert report["parent_content_hash"] == index_content_hash(parent)
        assert report["result_content_hash"] == index_content_hash(result)
        assert report["counts"]["operations"] == len(delta.operations)

    def test_reports_a_full_snapshot_file(self, tmp_path, problem):
        index = problem.build_index()
        path = save_snapshot(
            tmp_path / "index.tppsnap", index, constant=problem.constant
        )
        report = verify_snapshot_file(path)
        assert report["kind"] == "snapshot"
        assert report["content_hash"] == index_content_hash(index)

    def test_garbage_file_is_refused(self, tmp_path):
        path = tmp_path / "garbage.tppdelta"
        path.write_bytes(b"this is not a snapshot of anything at all....")
        with pytest.raises(SnapshotFormatError):
            verify_snapshot_file(path)
        with pytest.raises(SnapshotFormatError):
            load_delta_snapshot(path)

    def test_truncated_delta_is_refused(self, tmp_path, problem):
        path, _, _, _ = saved_delta(tmp_path, problem)
        blob = path.read_bytes()
        truncated = tmp_path / "truncated.tppdelta"
        truncated.write_bytes(blob[: len(blob) - 3])
        with pytest.raises(SnapshotFormatError):
            verify_snapshot_file(truncated)
        with pytest.raises(SnapshotFormatError):
            load_delta_snapshot(truncated)

    def test_corrupted_payload_is_refused(self, tmp_path, problem):
        path, _, _, _ = saved_delta(tmp_path, problem)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        corrupted = tmp_path / "corrupted.tppdelta"
        corrupted.write_bytes(bytes(blob))
        with pytest.raises(SnapshotFormatError):
            verify_snapshot_file(corrupted)

    def test_short_file_is_refused(self, tmp_path):
        path = tmp_path / "short.tppdelta"
        path.write_bytes(DELTA_MAGIC[:4])
        with pytest.raises(SnapshotFormatError):
            verify_snapshot_file(path)
