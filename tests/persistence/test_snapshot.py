"""Tests for the index-snapshot persistence layer.

Covers the PR's acceptance guarantees:

* round trips — save -> load restores the built index **bit-identically**
  (all flat arrays compared by bytes) across the built-in motifs and a
  custom tuple-only motif,
* trace identity — a cold-started session's greedy traces equal a freshly
  enumerated session's byte for byte,
* rejection — version mismatch, payload corruption, truncation,
  platform-width mismatch and stale (content-hash) snapshots all fail with
  clear, typed errors instead of silently serving wrong gains.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.core.engines import CoverageEngine
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.targets import sample_random_targets
from repro.exceptions import SnapshotFormatError, SnapshotMismatchError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import Graph
from repro.motifs.base import MotifPattern
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS, TargetSubgraphIndex
from repro.persistence import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    load_snapshot,
    save_snapshot,
    snapshot_content_hash,
)
from repro.service import ProtectionRequest, ProtectionService


def fingerprint(index: TargetSubgraphIndex) -> tuple:
    """The library-wide bit-identity fingerprint (same as the benchmarks)."""
    arrays = tuple(getattr(index, name).tobytes() for name in INDEX_ARRAY_FIELDS)
    return arrays + (index._target_ranges, index._candidate_ids)


class TupleOnlySquare(MotifPattern):
    """A custom motif with no id-space override (pickled into the snapshot)."""

    name = "tuple-only-square"

    def enumerate_instances(self, graph, target):
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        neighbors_v = graph.neighbors(v)
        for a in graph.neighbors(u):
            if a in (u, v):
                continue
            for b in graph.neighbors(a):
                if b in (u, v, a):
                    continue
                if b in neighbors_v:
                    yield frozenset(
                        (
                            self._canonical(u, a),
                            self._canonical(a, b),
                            self._canonical(b, v),
                        )
                    )


class ImposterTriangle(TupleOnlySquare):
    """Unregistered pattern whose name collides with a registered builtin."""

    name = "triangle"


@pytest.fixture
def graph():
    return powerlaw_cluster_graph(240, 4, 0.5, seed=5)


@pytest.fixture
def targets(graph):
    return sample_random_targets(graph, 6, seed=2)


def saved_problem(tmp_path, graph, targets, motif, name="index.tppsnap"):
    problem = TPPProblem(graph, targets, motif=motif)
    path = problem.save_index(tmp_path / name)
    return problem, path


class TestRoundTrip:
    @pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri", "path4"])
    def test_builtin_motifs_restore_bit_identically(
        self, tmp_path, graph, targets, motif
    ):
        problem, path = saved_problem(tmp_path, graph, targets, motif)
        restored = TPPProblem.from_snapshot(path)
        assert fingerprint(restored.build_index()) == fingerprint(problem.build_index())
        assert restored.targets == problem.targets
        assert restored.constant == problem.constant
        assert restored.motif.name == motif
        assert restored.graph.number_of_nodes() == graph.number_of_nodes()
        assert restored.graph.number_of_edges() == graph.number_of_edges()
        assert set(restored.graph.edges()) == set(graph.edges())

    def test_custom_tuple_only_motif_round_trips(self, tmp_path, graph, targets):
        problem, path = saved_problem(tmp_path, graph, targets, TupleOnlySquare())
        restored = TPPProblem.from_snapshot(path)
        assert fingerprint(restored.build_index()) == fingerprint(problem.build_index())
        assert restored.motif.name == "tuple-only-square"
        assert isinstance(restored.motif, TupleOnlySquare)

    def test_name_colliding_custom_motif_keeps_its_own_class(
        self, tmp_path, graph, targets
    ):
        """An unregistered pattern that shares a registered name must travel
        by pickle — restoring the registry's pattern instead would silently
        recount/re-enumerate the wrong motif."""
        problem, path = saved_problem(
            tmp_path, graph, targets, ImposterTriangle(), name="imposter.tppsnap"
        )
        restored = TPPProblem.from_snapshot(path)
        assert type(restored.motif).__name__ == "ImposterTriangle"
        assert fingerprint(restored.build_index()) == fingerprint(problem.build_index())

    def test_custom_motif_refused_without_pickle(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, TupleOnlySquare())
        with pytest.raises(SnapshotFormatError, match="pickle"):
            load_snapshot(path, allow_pickle=False)

    def test_string_node_labels_round_trip(self, tmp_path):
        graph = Graph(
            edges=[("ann", "bob"), ("bob", "cat"), ("ann", "cat"), ("ann", "dan"), ("dan", "cat")]
        )
        problem, path = saved_problem(tmp_path, graph, [("ann", "cat")], "triangle")
        restored = TPPProblem.from_snapshot(path)
        assert fingerprint(restored.build_index()) == fingerprint(problem.build_index())
        assert restored.targets == (("ann", "cat"),)
        # pure int/str labels stay pickle-free
        assert load_snapshot(path, allow_pickle=False).constant == problem.constant

    def test_greedy_traces_agree_after_reload(self, tmp_path, graph, targets):
        problem, path = saved_problem(tmp_path, graph, targets, "triangle")
        restored = TPPProblem.from_snapshot(path)
        budget = max(1, problem.build_index().number_of_instances() // 3)
        fresh = sgb_greedy(
            problem, budget, engine=CoverageEngine(problem, state=problem.build_index().new_state())
        )
        cold = sgb_greedy(
            restored, budget, engine=CoverageEngine(restored, state=restored.build_index().new_state())
        )
        assert cold.protectors == fresh.protectors
        assert cold.similarity_trace == fresh.similarity_trace

    def test_explicit_constant_survives(self, tmp_path, graph, targets):
        problem = TPPProblem(graph, targets, motif="triangle")
        bigger = problem.initial_similarity() + 17
        problem = TPPProblem(graph, targets, motif="triangle", constant=bigger)
        path = problem.save_index(tmp_path / "c.tppsnap")
        assert TPPProblem.from_snapshot(path).constant == bigger


class TestServiceColdStart:
    def test_from_snapshot_serves_identical_results(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        built = ProtectionService(graph, targets, motif="triangle")
        cold = ProtectionService.from_snapshot(path)
        assert cold.index_source == "snapshot"
        assert built.index_source == "built"
        assert cold.pristine_similarity() == built.pristine_similarity()
        for method in ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:DBD"):
            request = ProtectionRequest(method, 12)
            a, b = built.solve(request), cold.solve(request)
            assert a.protectors == b.protectors
            assert a.similarity_trace == b.similarity_trace
            assert b.extra["service"]["index_source"] == "snapshot"
            assert a.extra["service"]["index_source"] == "built"

    def test_cold_started_session_supports_process_fanout(
        self, tmp_path, graph, targets
    ):
        """A snapshot-restored problem (lazy graphs, deferred edge tables)
        must survive the pickle round trip into process-mode workers."""
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        cold = ProtectionService.from_snapshot(path)
        requests = [ProtectionRequest("SGB-Greedy", budget) for budget in (5, 9)]
        serial = cold.solve_many(requests)
        fanned = cold.solve_many(requests, workers=2, mode="process")
        for a, b in zip(serial, fanned):
            assert a.protectors == b.protectors
            assert a.similarity_trace == b.similarity_trace
            # worker sessions echo the parent's provenance tag
            assert b.extra["service"]["index_source"] == "snapshot"

    def test_cold_started_session_serves_target_subsets(
        self, tmp_path, graph, targets
    ):
        """Subset queries enumerate their sub-session on the lazily
        materialised graphs — same answers as a built session's."""
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        built = ProtectionService(graph, targets, motif="triangle")
        cold = ProtectionService.from_snapshot(path)
        subset = tuple(sorted(targets)[:2])
        request = ProtectionRequest("SGB-Greedy", 6, targets=subset)
        a, b = built.solve(request), cold.solve(request)
        assert a.protectors == b.protectors
        assert a.similarity_trace == b.similarity_trace

    def test_problem_constructor_rejects_foreign_index(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        snapshot = load_snapshot(path)
        other_targets = sample_random_targets(graph, 6, seed=9)
        from repro.exceptions import InvalidTargetError

        with pytest.raises(InvalidTargetError):
            TPPProblem(graph, other_targets, motif="triangle", index=snapshot.index)


class TestRejection:
    def test_version_mismatch_rejected(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        blob = bytearray(path.read_bytes())
        struct.pack_into("<I", blob, len(SNAPSHOT_MAGIC), SNAPSHOT_VERSION + 1)
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotFormatError, match="version"):
            load_snapshot(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not-a-snapshot.tppsnap"
        path.write_bytes(b"definitely not a snapshot, but long enough to parse\0\0\0")
        with pytest.raises(SnapshotFormatError, match="magic"):
            load_snapshot(path)

    def test_truncated_file_rejected(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        blob = path.read_bytes()
        for cut in (10, len(blob) // 2, len(blob) - 7):
            path.write_bytes(blob[:cut])
            with pytest.raises(SnapshotFormatError):
                load_snapshot(path)

    def test_corrupted_payload_rejected(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF  # flip bits deep inside the payload
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotFormatError, match="corrupt"):
            load_snapshot(path)

    def test_tampered_header_constant_rejected(self, tmp_path, graph, targets):
        """The constant C lives in the header; header edits must be refused,
        never served as silently shifted dissimilarities."""
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        blob = path.read_bytes()
        preamble = struct.Struct(f"<{len(SNAPSHOT_MAGIC)}sIQ")
        magic, version, header_length = preamble.unpack_from(blob)
        header_bytes = blob[preamble.size : preamble.size + header_length]
        constant = json.loads(header_bytes)["constant"]
        tampered = header_bytes.replace(
            f'"constant":{constant}'.encode(), f'"constant":{constant + 100}'.encode()
        )
        assert tampered != header_bytes
        path.write_bytes(
            preamble.pack(magic, version, len(tampered))
            + tampered
            + blob[preamble.size + header_length :]
        )
        with pytest.raises(SnapshotFormatError, match="header"):
            load_snapshot(path)

    def test_platform_width_mismatch_rejected(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        blob = path.read_bytes()
        preamble = struct.Struct(f"<{len(SNAPSHOT_MAGIC)}sIQ")
        magic, version, header_length = preamble.unpack_from(blob)
        header = json.loads(blob[preamble.size : preamble.size + header_length])
        header["long_itemsize"] = 4 if header["long_itemsize"] == 8 else 8
        # a genuinely foreign-platform file carries a *consistent* header;
        # re-sign it so the width check (not the corruption check) fires
        from repro.persistence.snapshot import _header_digest

        header["header_hash"] = _header_digest(header)
        header_bytes = json.dumps(header, separators=(",", ":")).encode()
        path.write_bytes(
            preamble.pack(magic, version, len(header_bytes))
            + header_bytes
            + blob[preamble.size + header_length :]
        )
        with pytest.raises(SnapshotFormatError, match="C long"):
            load_snapshot(path)

    def test_stale_snapshot_detected_by_content_hash(self, tmp_path, graph, targets):
        _, path = saved_problem(tmp_path, graph, targets, "triangle")
        snapshot = load_snapshot(path)
        snapshot.verify(graph, targets, "triangle")  # the true inputs pass

        changed = graph.copy()
        u = next(iter(changed.nodes()))
        changed.add_edge(u, "a-brand-new-node")
        assert not snapshot.matches(changed, targets, "triangle")
        with pytest.raises(SnapshotMismatchError, match="stale"):
            snapshot.verify(changed, targets, "triangle")
        with pytest.raises(SnapshotMismatchError):
            snapshot.verify(graph, targets, "rectangle")
        fewer = list(targets)[:-1]
        with pytest.raises(SnapshotMismatchError):
            snapshot.verify(graph, fewer, "triangle")

    def test_content_hash_is_reproducible(self, graph, targets):
        assert snapshot_content_hash(graph, targets, "triangle") == (
            snapshot_content_hash(graph, targets, "triangle")
        )
        assert snapshot_content_hash(graph, targets, "triangle") != (
            snapshot_content_hash(graph, targets, "rectangle")
        )


class TestLowLevel:
    def test_save_snapshot_returns_path_and_header_counts(
        self, tmp_path, graph, targets
    ):
        problem = TPPProblem(graph, targets, motif="triangle")
        index = problem.build_index()
        path = save_snapshot(tmp_path / "low.tppsnap", index, problem.constant)
        snapshot = load_snapshot(path)
        counts = snapshot.header["counts"]
        assert counts["instances"] == index.number_of_instances()
        assert counts["candidate_edges"] == index.number_of_candidate_edges()
        assert counts["targets"] == len(targets)
        assert snapshot.header["format_version"] == SNAPSHOT_VERSION

    def test_restored_index_answers_queries_like_fresh(self, tmp_path, graph, targets):
        problem, path = saved_problem(tmp_path, graph, targets, "triangle")
        fresh = problem.build_index()
        restored = load_snapshot(path).index
        assert restored.initial_total_similarity() == fresh.initial_total_similarity()
        assert restored.candidate_edge_list() == fresh.candidate_edge_list()
        for target in problem.targets:
            assert restored.initial_similarity(target) == fresh.initial_similarity(target)
            assert restored.instances_of(target) == fresh.instances_of(target)
        state = restored.new_state()
        fresh_state = fresh.new_state()
        for edge in restored.candidate_edge_list()[:5]:
            assert state.delete_edge(edge) == fresh_state.delete_edge(edge)
        assert state.total_similarity() == fresh_state.total_similarity()
