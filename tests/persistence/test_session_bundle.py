"""Tests for ``.tppsess`` session bundles (parent index + subset caches)."""

import json
import zipfile

import pytest

from repro.core.model import TPPProblem
from repro.datasets.targets import sample_random_targets
from repro.exceptions import SnapshotFormatError, SnapshotMismatchError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.persistence import load_session, save_session
from repro.service import ProtectionRequest, ProtectionService


@pytest.fixture(scope="module")
def problem():
    graph = powerlaw_cluster_graph(180, 3, 0.5, seed=3)
    targets = sample_random_targets(graph, 6, seed=1)
    built = TPPProblem(graph, targets, motif="triangle")
    built.build_index()
    return built


def trace(result):
    return (result.protectors, result.similarity_trace)


def warm_service(problem, subset_sizes=(3, 4)):
    """A session whose subset cache holds one sub-session per size."""
    service = ProtectionService(problem)
    for size in subset_sizes:
        service.solve(
            ProtectionRequest("SGB-Greedy", 3, targets=tuple(problem.targets[:size]))
        )
    return service


class TestRoundTrip:
    def test_subset_caches_survive(self, problem, tmp_path):
        service = warm_service(problem)
        assert len(service.cached_subset_sessions()) == 2
        bundle = service.save_session(tmp_path / "warm.tppsess")

        restored = ProtectionService.from_session(bundle)
        assert restored.index_source == "snapshot"
        restored_subsets = restored.cached_subset_sessions()
        assert list(restored_subsets) == list(service.cached_subset_sessions())
        for subsession in restored_subsets.values():
            assert subsession.index_source == "snapshot"

        # the very first subset query on the replica reuses the shipped
        # sub-session index instead of re-enumerating
        request = ProtectionRequest("SGB-Greedy", 3, targets=tuple(problem.targets[:3]))
        answer = restored.solve(request)
        assert answer.extra["service"]["reused_index"] is True
        assert trace(answer) == trace(service.solve(request))

    def test_full_target_queries_byte_identical(self, problem, tmp_path):
        service = warm_service(problem)
        restored = ProtectionService.from_session(
            service.save_session(tmp_path / "warm.tppsess")
        )
        for request in (
            ProtectionRequest("SGB-Greedy", 5),
            ProtectionRequest("CT-Greedy:TBD", 4),
            ProtectionRequest("RD", 5, seed=7),
        ):
            assert trace(restored.solve(request)) == trace(service.solve(request))

    def test_empty_cache_round_trips(self, problem, tmp_path):
        service = ProtectionService(problem)
        restored = ProtectionService.from_session(
            service.save_session(tmp_path / "cold.tppsess")
        )
        assert restored.cached_subset_sessions() == {}
        request = ProtectionRequest("SGB-Greedy", 4)
        assert trace(restored.solve(request)) == trace(service.solve(request))

    def test_resave_is_byte_identical(self, problem, tmp_path):
        service = warm_service(problem)
        first = service.save_session(tmp_path / "one.tppsess")
        second = service.save_session(tmp_path / "two.tppsess")
        assert first.read_bytes() == second.read_bytes()

    def test_module_level_functions_match_methods(self, problem, tmp_path):
        service = warm_service(problem, subset_sizes=(3,))
        via_function = save_session(tmp_path / "fn.tppsess", service)
        via_method = service.save_session(tmp_path / "method.tppsess")
        assert via_function.read_bytes() == via_method.read_bytes()
        restored = load_session(via_function)
        assert len(restored.cached_subset_sessions()) == 1


class TestCacheBounds:
    def test_restore_respects_smaller_lru_bound(self, problem, tmp_path):
        service = warm_service(problem, subset_sizes=(3, 4, 5))
        bundle = service.save_session(tmp_path / "three.tppsess")
        restored = ProtectionService.from_session(bundle, max_cached_subsets=1)
        kept = restored.cached_subset_sessions()
        # LRU: adopting in least-recent-first order leaves the most recent
        assert list(kept) == [list(service.cached_subset_sessions())[-1]]

    def test_unbounded_restore_keeps_everything(self, problem, tmp_path):
        service = warm_service(problem, subset_sizes=(3, 4, 5))
        bundle = service.save_session(tmp_path / "three.tppsess")
        restored = ProtectionService.from_session(bundle, max_cached_subsets=None)
        assert len(restored.cached_subset_sessions()) == 3


class TestRefusals:
    def test_not_a_zip(self, tmp_path):
        garbage = tmp_path / "nope.tppsess"
        garbage.write_bytes(b"this is not a session bundle")
        with pytest.raises(SnapshotFormatError):
            load_session(garbage)

    def test_missing_manifest(self, tmp_path):
        bundle = tmp_path / "no-manifest.tppsess"
        with zipfile.ZipFile(bundle, "w") as archive:
            archive.writestr("parent.tppsnap", b"whatever")
        with pytest.raises(SnapshotFormatError):
            load_session(bundle)

    def test_wrong_kind_refused(self, problem, tmp_path):
        bundle = ProtectionService(problem).save_session(tmp_path / "a.tppsess")
        tampered = tmp_path / "tampered.tppsess"
        _rewrite_manifest(bundle, tampered, lambda m: {**m, "kind": "other"})
        with pytest.raises(SnapshotFormatError):
            load_session(tampered)

    def test_tampered_content_hash_refused(self, problem, tmp_path):
        bundle = ProtectionService(problem).save_session(tmp_path / "a.tppsess")
        tampered = tmp_path / "tampered.tppsess"
        _rewrite_manifest(
            bundle, tampered, lambda m: {**m, "content_hash": "0" * 64}
        )
        with pytest.raises(SnapshotMismatchError):
            load_session(tampered)

    def test_zip_slip_member_name_refused(self, problem, tmp_path):
        bundle = ProtectionService(problem).save_session(tmp_path / "a.tppsess")
        tampered = tmp_path / "sneaky.tppsess"
        _rewrite_manifest(
            bundle,
            tampered,
            lambda m: {**m, "subsets": ["../outside.tppsnap"]},
        )
        with pytest.raises(SnapshotFormatError):
            load_session(tampered)

    def test_foreign_subset_refused(self, problem, tmp_path):
        """A subset member whose targets are not a subset of the parent's."""
        bundle = warm_service(problem, subset_sizes=(3,)).save_session(
            tmp_path / "a.tppsess"
        )
        foreign_graph = powerlaw_cluster_graph(120, 3, 0.5, seed=17)
        foreign = TPPProblem(
            foreign_graph,
            sample_random_targets(foreign_graph, 3, seed=5),
            motif="triangle",
        )
        foreign_file = foreign.save_index(tmp_path / "foreign.tppsnap")
        tampered = tmp_path / "foreign.tppsess"
        _replace_member(bundle, tampered, "subset-0000.tppsnap", foreign_file.read_bytes())
        with pytest.raises(SnapshotFormatError):
            load_session(tampered)


def _rewrite_manifest(source, destination, transform):
    _rewrite_bundle(source, destination, manifest_transform=transform)


def _replace_member(source, destination, member_name, payload):
    _rewrite_bundle(source, destination, replacements={member_name: payload})


def _rewrite_bundle(source, destination, manifest_transform=None, replacements=None):
    replacements = replacements or {}
    with zipfile.ZipFile(source) as archive:
        members = {name: archive.read(name) for name in archive.namelist()}
    if manifest_transform is not None:
        manifest = json.loads(members["manifest.json"].decode("utf-8"))
        members["manifest.json"] = json.dumps(
            manifest_transform(manifest), indent=2, sort_keys=True
        ).encode("utf-8")
    members.update(replacements)
    with zipfile.ZipFile(destination, "w") as archive:
        for name, data in members.items():
            archive.writestr(name, data)
