"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.generators import powerlaw_cluster_graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_protect_defaults(self):
        args = build_parser().parse_args(["protect"])
        assert args.dataset == "arenas-email"
        assert args.method == "SGB-Greedy"
        assert args.budget == [20]
        assert args.workers == 1

    def test_method_choices_follow_live_registry(self, capsys):
        from repro.service import register_method, unregister_method
        from repro.core.sgb import sgb_greedy

        with pytest.raises(SystemExit):
            build_parser().parse_args(["protect", "--method", "Oracle"])
        error = capsys.readouterr().err
        assert "SGB-Greedy" in error  # the valid names are listed

        @register_method("Plugin-Method", kind="greedy", order=999)
        def _run(problem, budget, engine, seed, **options):
            return sgb_greedy(problem, budget, engine=engine)

        try:
            args = build_parser().parse_args(["protect", "--method", "Plugin-Method"])
            assert args.method == "Plugin-Method"
        finally:
            unregister_method("Plugin-Method")

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3", "--scale", "quick"])
        assert args.name == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestProtectCommand:
    def test_protect_named_dataset(self, capsys):
        exit_code = main(
            [
                "protect",
                "--dataset",
                "small-social",
                "--targets",
                "4",
                "--budget",
                "10",
                "--method",
                "SGB-Greedy",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SGB-Greedy" in output
        assert "fully protected" in output

    def test_protect_edge_list_with_output_and_utility(self, tmp_path, capsys):
        graph = powerlaw_cluster_graph(80, 3, 0.5, seed=1)
        source = tmp_path / "input.txt"
        write_edge_list(graph, source)
        released_path = tmp_path / "released.txt"
        exit_code = main(
            [
                "protect",
                "--edge-list",
                str(source),
                "--targets",
                "3",
                "--budget",
                "15",
                "--utility",
                "--output",
                str(released_path),
            ]
        )
        assert exit_code == 0
        assert released_path.exists()
        released = read_edge_list(released_path)
        assert released.number_of_edges() < graph.number_of_edges()
        output = capsys.readouterr().out
        assert "average utility loss" in output


class TestProtectSweepAndJson:
    def test_budget_sweep_with_workers_and_json(self, tmp_path, capsys):
        from repro.core.model import ProtectionResult

        json_path = tmp_path / "results.json"
        exit_code = main(
            [
                "protect",
                "--dataset",
                "small-social",
                "--targets",
                "4",
                "--budget",
                "5",
                "10",
                "15",
                "--workers",
                "2",
                "--json",
                str(json_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert isinstance(payload, list) and len(payload) == 3
        results = [ProtectionResult.from_dict(entry) for entry in payload]
        assert [r.budget for r in results] == [5, 10, 15]
        # the sweep shares one session: every result echoes its request and
        # reports the reused index
        for result in results:
            meta = result.extra["service"]
            assert meta["reused_index"] is True
            assert meta["request"]["method"] == "SGB-Greedy"
        output = capsys.readouterr().out
        assert output.count("fully protected:") == 3

    def test_single_budget_json_is_object(self, tmp_path):
        json_path = tmp_path / "result.json"
        exit_code = main(
            [
                "protect",
                "--dataset",
                "small-social",
                "--targets",
                "3",
                "--budget",
                "6",
                "--json",
                str(json_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert isinstance(payload, dict)
        assert payload["budget"] == 6


class TestBuildIndexCommand:
    def test_build_index_then_protect_from_snapshot(self, tmp_path, capsys):
        snapshot_path = tmp_path / "small.tppsnap"
        exit_code = main(
            [
                "build-index",
                "--dataset",
                "small-social",
                "--targets",
                "4",
                "--seed",
                "1",
                "--output",
                str(snapshot_path),
            ]
        )
        assert exit_code == 0
        assert snapshot_path.exists()
        output = capsys.readouterr().out
        assert "snapshot written to" in output
        assert "target subgraphs" in output

        exit_code = main(
            ["protect", "--index-file", str(snapshot_path), "--budget", "10"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cold-started" in output
        assert "fully protected" in output

    def test_snapshot_protect_matches_direct_protect(self, tmp_path, capsys):
        """The cold-started run selects the same protectors as a direct run
        on the same dataset/seed — the snapshot captures the whole instance."""
        snapshot_path = tmp_path / "same.tppsnap"
        common = ["--dataset", "small-social", "--targets", "4", "--seed", "7"]
        assert main(["build-index", *common, "--output", str(snapshot_path)]) == 0
        capsys.readouterr()

        direct_json = tmp_path / "direct.json"
        snap_json = tmp_path / "snap.json"
        assert main(
            ["protect", *common, "--budget", "8", "--json", str(direct_json)]
        ) == 0
        assert main(
            [
                "protect",
                "--index-file",
                str(snapshot_path),
                "--budget",
                "8",
                "--json",
                str(snap_json),
            ]
        ) == 0
        direct = json.loads(direct_json.read_text())
        cold = json.loads(snap_json.read_text())
        assert cold["protectors"] == direct["protectors"]
        assert cold["similarity_trace"] == direct["similarity_trace"]
        assert cold["extra"]["service"]["index_source"] == "snapshot"
        assert direct["extra"]["service"]["index_source"] == "built"

    def test_build_index_requires_output(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build-index"])


class TestExperimentCommand:
    def test_experiment_table5_with_json(self, tmp_path, capsys):
        json_path = tmp_path / "result.json"
        exit_code = main(
            ["experiment", "table5", "--scale", "quick", "--json", str(json_path)]
        )
        assert exit_code == 0
        assert json_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["kind"] == "utility_loss"
        output = capsys.readouterr().out
        assert "utility loss" in output


class TestApplyDeltaCommand:
    @pytest.fixture
    def snapshot_path(self, tmp_path, capsys):
        path = tmp_path / "base.tppsnap"
        assert main(
            [
                "build-index",
                "--dataset",
                "small-social",
                "--targets",
                "4",
                "--seed",
                "1",
                "--output",
                str(path),
            ]
        ) == 0
        capsys.readouterr()
        return path

    @staticmethod
    def pick_edges(snapshot_path):
        """A deletable phase-1 edge and an insertable non-edge of the snapshot."""
        from repro.core.model import TPPProblem
        from repro.graphs.graph import canonical_edge

        problem = TPPProblem.from_snapshot(snapshot_path)
        phase1 = problem.phase1_graph
        target_set = {canonical_edge(*target) for target in problem.targets}
        deletion = next(
            edge
            for edge in sorted(phase1.edges())
            if canonical_edge(*edge) not in target_set
        )
        nodes = sorted(phase1.nodes())
        insertion = next(
            (u, v)
            for u in nodes
            for v in nodes[::-1]
            if u != v
            and canonical_edge(u, v) not in target_set
            and not phase1.has_edge(u, v)
        )
        return deletion, insertion

    def test_inline_ops_update_and_record_a_delta(
        self, tmp_path, snapshot_path, capsys
    ):
        deletion, insertion = self.pick_edges(snapshot_path)
        updated_path = tmp_path / "updated.tppsnap"
        delta_path = tmp_path / "update.tppdelta"
        exit_code = main(
            [
                "apply-delta",
                "--index-file",
                str(snapshot_path),
                "--delete",
                str(deletion[0]),
                str(deletion[1]),
                "--insert",
                str(insertion[0]),
                str(insertion[1]),
                "--output",
                str(updated_path),
                "--save-delta",
                str(delta_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "applied 1 insert(s) / 1 delete(s)" in output
        assert "updated snapshot written to" in output
        assert "delta recorded to" in output
        assert updated_path.exists() and delta_path.exists()

        # the recorded delta replays onto the base snapshot bit-identically
        from repro.persistence import verify_snapshot_file

        replay_path = tmp_path / "replayed.tppsnap"
        assert main(
            [
                "apply-delta",
                "--index-file",
                str(snapshot_path),
                "--delta-file",
                str(delta_path),
                "--output",
                str(replay_path),
            ]
        ) == 0
        capsys.readouterr()
        assert (
            verify_snapshot_file(replay_path)["content_hash"]
            == verify_snapshot_file(updated_path)["content_hash"]
        )

    def test_stale_delta_file_is_refused(self, tmp_path, snapshot_path, capsys):
        deletion, insertion = self.pick_edges(snapshot_path)
        updated_path = tmp_path / "updated.tppsnap"
        delta_path = tmp_path / "update.tppdelta"
        assert main(
            [
                "apply-delta",
                "--index-file",
                str(snapshot_path),
                "--insert",
                str(insertion[0]),
                str(insertion[1]),
                "--output",
                str(updated_path),
                "--save-delta",
                str(delta_path),
            ]
        ) == 0
        capsys.readouterr()
        # replaying against the *updated* snapshot: wrong parent state
        exit_code = main(
            [
                "apply-delta",
                "--index-file",
                str(updated_path),
                "--delta-file",
                str(delta_path),
                "--output",
                str(tmp_path / "never.tppsnap"),
            ]
        )
        assert exit_code == 1
        assert "apply-delta:" in capsys.readouterr().err
        assert not (tmp_path / "never.tppsnap").exists()

    def test_deleting_a_missing_edge_is_refused(
        self, tmp_path, snapshot_path, capsys
    ):
        _, insertion = self.pick_edges(snapshot_path)
        exit_code = main(
            [
                "apply-delta",
                "--index-file",
                str(snapshot_path),
                "--delete",
                str(insertion[0]),
                str(insertion[1]),
                "--output",
                str(tmp_path / "never.tppsnap"),
            ]
        )
        assert exit_code == 1
        assert "apply-delta:" in capsys.readouterr().err

    def test_delta_file_and_inline_ops_are_exclusive(
        self, tmp_path, snapshot_path, capsys
    ):
        exit_code = main(
            [
                "apply-delta",
                "--index-file",
                str(snapshot_path),
                "--delta-file",
                str(tmp_path / "whatever.tppdelta"),
                "--insert",
                "1",
                "2",
                "--output",
                str(tmp_path / "never.tppsnap"),
            ]
        )
        assert exit_code == 2
        assert "not both" in capsys.readouterr().err

    def test_empty_delta_is_refused(self, tmp_path, snapshot_path, capsys):
        exit_code = main(
            [
                "apply-delta",
                "--index-file",
                str(snapshot_path),
                "--output",
                str(tmp_path / "never.tppsnap"),
            ]
        )
        assert exit_code == 2
        assert "nothing to apply" in capsys.readouterr().err


class TestVerifyIndexCommand:
    def test_reports_snapshot_and_delta_files(self, tmp_path, capsys):
        snapshot_path = tmp_path / "base.tppsnap"
        assert main(
            [
                "build-index",
                "--dataset",
                "small-social",
                "--targets",
                "4",
                "--seed",
                "1",
                "--output",
                str(snapshot_path),
            ]
        ) == 0
        deletion, _ = TestApplyDeltaCommand.pick_edges(snapshot_path)
        delta_path = tmp_path / "update.tppdelta"
        assert main(
            [
                "apply-delta",
                "--index-file",
                str(snapshot_path),
                "--delete",
                str(deletion[0]),
                str(deletion[1]),
                "--output",
                str(tmp_path / "updated.tppsnap"),
                "--save-delta",
                str(delta_path),
            ]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["verify-index", str(snapshot_path), str(delta_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "OK snapshot" in output
        assert "OK delta" in output

    def test_invalid_file_fails_the_command(self, tmp_path, capsys):
        good = tmp_path / "good.tppsnap"
        assert main(
            [
                "build-index",
                "--dataset",
                "small-social",
                "--targets",
                "4",
                "--seed",
                "1",
                "--output",
                str(good),
            ]
        ) == 0
        capsys.readouterr()
        bad = tmp_path / "bad.tppdelta"
        bad.write_bytes(b"definitely not a snapshot")
        exit_code = main(["verify-index", str(good), str(bad)])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "OK snapshot" in captured.out
        assert "INVALID" in captured.err
