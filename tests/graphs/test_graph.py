"""Tests for the core Graph data structure."""

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graphs.graph import Graph, canonical_edge
from repro.exceptions import SelfLoopError


class TestCanonicalEdge:
    def test_orders_comparable_nodes(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_orders_strings(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_fall_back_to_repr(self):
        edge = canonical_edge("a", 1)
        assert set(edge) == {"a", 1}
        assert canonical_edge(1, "a") == edge


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0

    def test_from_edges_and_nodes(self):
        graph = Graph(edges=[(1, 2), (2, 3)], nodes=[9])
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 2
        assert graph.has_node(9)
        assert graph.degree(9) == 0

    def test_duplicate_edges_collapse(self):
        graph = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            Graph(edges=[(1, 1)])


class TestMutation:
    def test_add_and_remove_edge(self):
        graph = Graph()
        graph.add_edge("a", "b")
        assert graph.has_edge("b", "a")
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.has_node("a") and graph.has_node("b")

    def test_remove_missing_edge_raises(self):
        graph = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 3)

    def test_remove_edges_from_ignores_missing(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        graph.remove_edges_from([(1, 2), (5, 6)])
        assert graph.number_of_edges() == 1

    def test_remove_node_drops_incident_edges(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        graph.remove_node(2)
        assert not graph.has_node(2)
        assert graph.number_of_edges() == 1
        assert graph.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("ghost")


class TestQueries:
    def test_neighbors_and_degree(self):
        graph = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert graph.neighbors(1) == {2, 3, 4}
        assert graph.degree(1) == 3
        assert graph.degree(2) == 1

    def test_neighbors_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.neighbors(42)

    def test_common_neighbors(self):
        graph = Graph(edges=[(1, 3), (2, 3), (1, 4), (2, 4), (1, 5)])
        assert graph.common_neighbors(1, 2) == {3, 4}

    def test_degrees_mapping(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert graph.degrees() == {1: 1, 2: 2, 3: 1}

    def test_density(self):
        triangle = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        assert triangle.density() == pytest.approx(1.0)
        assert Graph(nodes=[1]).density() == 0.0


class TestIterationAndSizes:
    def test_edges_canonical_and_unique(self):
        graph = Graph(edges=[(2, 1), (3, 2)])
        edges = list(graph.edges())
        assert len(edges) == 2
        assert all(edge == canonical_edge(*edge) for edge in edges)
        assert set(edges) == {(1, 2), (2, 3)}

    def test_len_iter_contains(self):
        graph = Graph(edges=[(1, 2)], nodes=[7])
        assert len(graph) == 3
        assert set(iter(graph)) == {1, 2, 7}
        assert 7 in graph
        assert 99 not in graph


class TestCopiesAndViews:
    def test_copy_is_independent(self):
        graph = Graph(edges=[(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert graph.number_of_edges() == 1
        assert clone.number_of_edges() == 2

    def test_subgraph(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.number_of_nodes() == 3
        assert sub.edge_set() == {(1, 2), (2, 3)}

    def test_subgraph_ignores_unknown_nodes(self):
        graph = Graph(edges=[(1, 2)])
        sub = graph.subgraph([1, 2, 99])
        assert sub.number_of_nodes() == 2

    def test_without_edges_leaves_original_untouched(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        reduced = graph.without_edges([(1, 2), (9, 9)])
        assert reduced.number_of_edges() == 1
        assert graph.number_of_edges() == 2

    def test_equality(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(edges=[(3, 2), (2, 1)])
        c = Graph(edges=[(1, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_repr_contains_sizes(self):
        graph = Graph(edges=[(1, 2)])
        assert "n=2" in repr(graph)
        assert "m=1" in repr(graph)


class TestSubgraphDeterminism:
    """Pinned regression: ``subgraph`` used to iterate its ``keep`` set in
    hash order, so the induced graph's node iteration order (and hence
    every downstream insertion-ordered walk) varied with PYTHONHASHSEED
    for string nodes.  It now follows the parent graph's insertion order."""

    def test_subgraph_preserves_parent_node_order(self):
        graph = Graph(edges=[("d", "c"), ("c", "b"), ("b", "a"), ("a", "e")])
        sub = graph.subgraph(["e", "a", "b", "d"])
        # parent insertion order is d, c, b, a, e; c is not kept
        assert list(sub.nodes()) == ["d", "b", "a", "e"]

    def test_subgraph_order_independent_of_request_order(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        forward = graph.subgraph([1, 2, 3])
        backward = graph.subgraph([3, 2, 1])
        assert list(forward.nodes()) == list(backward.nodes())
        assert forward == backward
