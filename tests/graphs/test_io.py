"""Tests for edge-list IO."""

import gzip

import pytest

from repro.exceptions import GraphFormatError
from repro.graphs.graph import Graph
from repro.graphs.io import (
    edges_to_lines,
    iter_edge_lines,
    parse_edge_lines,
    read_edge_list,
    write_edge_list,
)


class TestParsing:
    def test_iter_edge_lines_skips_comments_and_blanks(self):
        lines = ["# comment", "% konect style", "", "1 2", "2 3 17 99"]
        assert list(iter_edge_lines(lines)) == [("1", "2"), ("2", "3")]

    def test_iter_edge_lines_rejects_single_field(self):
        with pytest.raises(GraphFormatError):
            list(iter_edge_lines(["42"]))

    def test_parse_as_int(self):
        graph = parse_edge_lines(["1 2", "2 3"])
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)

    def test_parse_keeps_strings_when_not_numeric(self):
        graph = parse_edge_lines(["alice bob", "bob carol"])
        assert graph.has_edge("alice", "bob")

    def test_parse_drops_self_loops(self):
        graph = parse_edge_lines(["1 1", "1 2"])
        assert graph.number_of_edges() == 1


class TestRoundTrip:
    def test_write_and_read(self, tmp_path):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path, header="test graph")
        loaded = read_edge_list(path)
        assert loaded == graph
        assert path.read_text().startswith("# test graph")

    def test_read_gzip(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("# snap style\n10 20\n20 30\n")
        graph = read_edge_list(path)
        assert graph.number_of_edges() == 2
        assert graph.has_edge(10, 20)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphFormatError):
            read_edge_list(tmp_path / "nope.txt")

    def test_write_creates_parent_directories(self, tmp_path):
        graph = Graph(edges=[(1, 2)])
        path = tmp_path / "deep" / "nested" / "graph.txt"
        write_edge_list(graph, path)
        assert path.exists()

    def test_edges_to_lines(self):
        lines = list(edges_to_lines([(1, 2), ("a", "b")]))
        assert lines == ["1 2", "a b"]
