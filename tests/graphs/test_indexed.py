"""Tests for the dense integer-indexed graph snapshot."""

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.indexed import IndexedGraph
from repro.exceptions import AssemblyModeError


@pytest.fixture
def graph():
    return Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)], nodes=[9])


class TestIds:
    def test_node_ids_dense_and_deterministic(self, graph):
        indexed = IndexedGraph(graph)
        assert sorted(indexed.node_id(node) for node in graph.nodes()) == list(
            range(graph.number_of_nodes())
        )
        # str order: "0" < "1" < "2" < "3" < "9"
        assert indexed.nodes == (0, 1, 2, 3, 9)
        assert indexed.node_at(indexed.node_id(3)) == 3

    def test_edge_ids_dense_and_sorted(self, graph):
        indexed = IndexedGraph(graph)
        assert indexed.number_of_edges() == 4
        assert list(indexed.edges) == sorted(
            graph.edges(), key=lambda e: (str(e[0]), str(e[1]))
        )
        for edge_id, edge in enumerate(indexed.edges):
            assert indexed.edge_id(*edge) == edge_id
            assert indexed.edge_at(edge_id) == edge

    def test_edge_id_order_insensitive(self, graph):
        indexed = IndexedGraph(graph)
        assert indexed.edge_id(1, 0) == indexed.edge_id(0, 1)
        assert indexed.find_edge_id(3, 2) == indexed.edge_id(2, 3)

    def test_missing_lookups(self, graph):
        indexed = IndexedGraph(graph)
        with pytest.raises(NodeNotFoundError):
            indexed.node_id(42)
        with pytest.raises(EdgeNotFoundError):
            indexed.edge_id(0, 9)
        assert indexed.find_edge_id(0, 9) is None
        assert not indexed.has_edge(0, 9)
        assert indexed.has_edge(1, 0)


class TestCSR:
    def test_degrees_match(self, graph):
        indexed = IndexedGraph(graph)
        for node in graph.nodes():
            assert indexed.degree_of(indexed.node_id(node)) == graph.degree(node)

    def test_neighbor_rows_match_adjacency(self, graph):
        indexed = IndexedGraph(graph)
        for node in graph.nodes():
            node_id = indexed.node_id(node)
            row = {indexed.node_at(v) for v in indexed.neighbor_ids(node_id)}
            assert row == set(graph.neighbors(node))

    def test_incident_edges_aligned_with_neighbors(self, graph):
        indexed = IndexedGraph(graph)
        for node in graph.nodes():
            node_id = indexed.node_id(node)
            neighbors = indexed.neighbor_ids(node_id)
            incident = indexed.incident_edge_ids(node_id)
            assert len(neighbors) == len(incident)
            for neighbor_id, edge_id in zip(neighbors, incident):
                assert indexed.edge_at(edge_id) == canonical_edge(
                    node, indexed.node_at(neighbor_id)
                )


class TestAssemblyModes:
    """The vectorised and the seed (python) CSR assembly are byte-identical."""

    @staticmethod
    def _assert_identical(graph):
        vectorized = IndexedGraph(graph, assembly="numpy")
        reference = IndexedGraph(graph, assembly="python")
        assert vectorized.nodes == reference.nodes
        assert vectorized.edges == reference.edges
        assert vectorized._indptr == reference._indptr
        assert vectorized._neighbors == reference._neighbors
        assert vectorized._incident_edges == reference._incident_edges

    def test_small_graph(self, graph):
        self._assert_identical(graph)

    def test_random_graphs(self):
        for seed in range(15):
            self._assert_identical(erdos_renyi_graph(25, 0.25, seed=seed))

    def test_string_labels_where_str_order_differs_from_value_order(self):
        # nodes 2 and 10: value order (2 < 10) disagrees with str order
        # ("10" < "2"), which is exactly the case the lexsort trick must get
        # right for edge ids to keep matching edge_sort_key
        graph = Graph(edges=[(2, 10), (10, 3), (2, 3), (1, 2)])
        self._assert_identical(graph)
        mixed = Graph(edges=[("b", "a10"), ("a2", "a10"), ("b", "a2"), ("c", "a10")])
        self._assert_identical(mixed)

    def test_empty_and_edgeless_graphs(self):
        self._assert_identical(Graph())
        self._assert_identical(Graph(nodes=[3, 1, 2]))

    def test_unknown_assembly_rejected(self, graph):
        with pytest.raises(AssemblyModeError):
            IndexedGraph(graph, assembly="fortran")


class TestRoundTrip:
    def test_to_graph_round_trip(self, graph):
        assert IndexedGraph(graph).to_graph() == graph

    def test_round_trip_random_graph(self):
        graph = erdos_renyi_graph(40, 0.15, seed=3)
        assert IndexedGraph(graph).to_graph() == graph

    def test_snapshot_immutable_under_source_mutation(self, graph):
        indexed = IndexedGraph(graph)
        graph.add_edge(0, 9)
        assert not indexed.has_edge(0, 9)
        assert indexed.number_of_edges() == 4

    def test_len_and_iter(self, graph):
        indexed = IndexedGraph(graph)
        assert len(indexed) == graph.number_of_nodes()
        assert set(indexed) == set(graph.nodes())
