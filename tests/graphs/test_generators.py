"""Tests for random graph generators."""

import pytest

from repro.exceptions import GraphGenerationError
from repro.graphs.algorithms import average_clustering, is_connected
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)


class TestDeterministicGenerators:
    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 10

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.number_of_edges() == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_cycle_too_small_has_no_edges(self):
        assert cycle_graph(2).number_of_edges() == 0

    def test_path_graph(self):
        graph = path_graph(4)
        assert graph.number_of_edges() == 3

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.degree(0) == 6
        assert graph.number_of_edges() == 6


class TestErdosRenyi:
    def test_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).number_of_edges() == 0
        assert erdos_renyi_graph(10, 1.0, seed=1).number_of_edges() == 45

    def test_seed_reproducibility(self):
        a = erdos_renyi_graph(30, 0.2, seed=5)
        b = erdos_renyi_graph(30, 0.2, seed=5)
        assert a == b

    def test_invalid_probability(self):
        with pytest.raises(GraphGenerationError):
            erdos_renyi_graph(10, 1.5)


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        graph = barabasi_albert_graph(100, 3, seed=2)
        assert graph.number_of_nodes() == 100
        assert graph.number_of_edges() > 100
        assert is_connected(graph)

    def test_invalid_m(self):
        with pytest.raises(GraphGenerationError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(GraphGenerationError):
            barabasi_albert_graph(5, 5)

    def test_hub_emerges(self):
        graph = barabasi_albert_graph(200, 2, seed=3)
        degrees = sorted(graph.degrees().values(), reverse=True)
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]


class TestWattsStrogatz:
    def test_no_rewiring_keeps_lattice(self):
        graph = watts_strogatz_graph(10, 4, 0.0, seed=1)
        assert graph.number_of_edges() == 20
        assert all(graph.degree(node) == 4 for node in graph.nodes())

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz_graph(30, 4, 0.3, seed=4)
        assert graph.number_of_edges() == 60

    def test_invalid_parameters(self):
        with pytest.raises(GraphGenerationError):
            watts_strogatz_graph(10, 3, 0.1)
        with pytest.raises(GraphGenerationError):
            watts_strogatz_graph(4, 4, 0.1)


class TestPowerlawCluster:
    def test_size_and_clustering(self):
        graph = powerlaw_cluster_graph(300, 4, 0.6, seed=1)
        assert graph.number_of_nodes() == 300
        # roughly m edges per new node
        assert graph.number_of_edges() >= 3 * (300 - 4) * 0.9
        assert average_clustering(graph) > 0.1

    def test_zero_triangle_probability_still_valid(self):
        graph = powerlaw_cluster_graph(100, 2, 0.0, seed=1)
        assert graph.number_of_nodes() == 100

    def test_invalid_parameters(self):
        with pytest.raises(GraphGenerationError):
            powerlaw_cluster_graph(10, 0, 0.5)
        with pytest.raises(GraphGenerationError):
            powerlaw_cluster_graph(10, 2, 1.5)

    def test_seed_reproducibility(self):
        a = powerlaw_cluster_graph(80, 3, 0.5, seed=9)
        b = powerlaw_cluster_graph(80, 3, 0.5, seed=9)
        assert a == b


class TestPlantedPartition:
    def test_dense_blocks_sparse_between(self):
        graph = planted_partition_graph([20, 20], p_in=0.8, p_out=0.02, seed=1)
        intra = sum(
            1 for u, v in graph.edges() if (u < 20) == (v < 20)
        )
        inter = graph.number_of_edges() - intra
        assert intra > inter

    def test_invalid_probability(self):
        with pytest.raises(GraphGenerationError):
            planted_partition_graph([5, 5], p_in=1.2, p_out=0.1)

    def test_total_nodes(self):
        graph = planted_partition_graph([3, 4, 5], p_in=0.5, p_out=0.1, seed=2)
        assert graph.number_of_nodes() == 12


class TestGenerationDeterminism:
    """Pinned regressions: seeded synthesis must not depend on CPython set
    iteration order (an implementation detail that can shift across
    versions and builds).  ``barabasi_albert_graph`` used to iterate the
    ``chosen`` target set (and ``_sample_distinct`` returned a hash-ordered
    ``list(chosen)``), feeding set internals into ``rng.choice``; both now
    iterate in sorted order, making these exact edge sets a contract."""

    GOLDEN_BA_12_3_SEED7 = [
        (0, 3), (0, 4), (0, 5), (0, 7), (0, 8),
        (1, 3), (1, 4), (1, 6), (1, 11),
        (2, 3), (2, 10),
        (3, 4), (3, 5), (3, 6), (3, 8), (3, 9), (3, 10),
        (4, 5), (4, 6), (4, 8), (4, 10),
        (5, 7), (5, 9), (5, 11),
        (6, 7),
        (7, 9),
        (9, 11),
    ]

    def test_barabasi_albert_pinned_edges(self):
        graph = barabasi_albert_graph(12, 3, seed=7)
        assert sorted(graph.edge_set()) == self.GOLDEN_BA_12_3_SEED7

    def test_barabasi_albert_edge_insertion_order_sorted_per_node(self):
        # within one attachment step the new node's edges appear in sorted
        # target order, so the full edge stream is reproducible too
        graph = barabasi_albert_graph(30, 4, seed=11)
        stream = list(graph.edges())
        by_new_node = {}
        for u, v in stream:
            new_node, target = max(u, v), min(u, v)
            by_new_node.setdefault(new_node, []).append(target)
        for targets in by_new_node.values():
            assert targets == sorted(targets)
