"""Tests for community detection and modularity."""

import pytest

from repro.graphs.community import (
    best_partition_modularity,
    greedy_modularity_communities,
    label_propagation_communities,
    modularity,
    partition_from_communities,
)
from repro.graphs.generators import complete_graph, planted_partition_graph
from repro.graphs.graph import Graph


def two_cliques_graph():
    """Two 5-cliques joined by a single bridge edge."""
    graph = Graph()
    for offset in (0, 5):
        for u in range(offset, offset + 5):
            for v in range(u + 1, offset + 5):
                graph.add_edge(u, v)
    graph.add_edge(0, 5)
    return graph


class TestModularity:
    def test_partition_from_communities(self):
        partition = partition_from_communities([[1, 2], [3]])
        assert partition == {1: 0, 2: 0, 3: 1}

    def test_two_clique_partition_has_high_modularity(self):
        graph = two_cliques_graph()
        good = modularity(graph, [set(range(5)), set(range(5, 10))])
        bad = modularity(graph, [set(range(10))])
        assert good > 0.3
        assert good > bad

    def test_single_community_modularity_zero(self):
        graph = complete_graph(5)
        assert modularity(graph, [set(range(5))]) == pytest.approx(0.0)

    def test_empty_graph(self):
        assert modularity(Graph(), []) == 0.0

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.karate_club_graph()
        from repro.graphs.convert import from_networkx

        graph = from_networkx(nx_graph)
        communities = [set(range(0, 17)), set(range(17, 34))]
        expected = networkx.algorithms.community.modularity(
            nx_graph, communities, weight=None
        )
        assert modularity(graph, communities) == pytest.approx(expected)


class TestLabelPropagation:
    def test_recovers_two_cliques(self):
        graph = two_cliques_graph()
        communities = label_propagation_communities(graph, seed=0)
        assert len(communities) >= 1
        # every community must be a subset of one of the two cliques or their union
        for community in communities:
            assert community <= set(range(10))

    def test_is_a_partition(self):
        graph = planted_partition_graph([15, 15], 0.6, 0.02, seed=1)
        communities = label_propagation_communities(graph, seed=1)
        all_nodes = [node for community in communities for node in community]
        assert len(all_nodes) == graph.number_of_nodes()
        assert len(set(all_nodes)) == graph.number_of_nodes()


class TestGreedyModularity:
    def test_recovers_two_cliques_exactly(self):
        graph = two_cliques_graph()
        communities = greedy_modularity_communities(graph)
        as_sets = {frozenset(c) for c in communities}
        assert frozenset(range(5)) in as_sets
        assert frozenset(range(5, 10)) in as_sets

    def test_positive_modularity_on_planted_partition(self):
        graph = planted_partition_graph([12, 12, 12], 0.7, 0.02, seed=3)
        communities = greedy_modularity_communities(graph)
        assert modularity(graph, communities) > 0.4

    def test_empty_graph(self):
        assert greedy_modularity_communities(Graph(nodes=[1, 2])) == [{1}, {2}]


class TestBestPartition:
    def test_small_graph_uses_greedy(self):
        graph = two_cliques_graph()
        assert best_partition_modularity(graph) > 0.3

    def test_large_graph_threshold_switches_to_label_propagation(self):
        graph = planted_partition_graph([15, 15], 0.6, 0.02, seed=2)
        value = best_partition_modularity(graph, large_graph_threshold=5)
        assert -0.5 <= value <= 1.0
