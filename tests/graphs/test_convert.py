"""Tests for graph conversion helpers."""

import pytest

from repro.graphs.convert import (
    from_adjacency,
    from_edge_list,
    from_indexed,
    from_networkx,
    to_adjacency,
    to_edge_list,
    to_indexed,
    to_networkx,
)
from repro.graphs.graph import Graph

networkx = pytest.importorskip("networkx")


class TestIndexedConversion:
    def test_round_trip(self):
        graph = Graph(edges=[(2, 1), (3, 2), (1, 3)], nodes=[7])
        indexed = to_indexed(graph)
        assert from_indexed(indexed) == graph

    def test_indexed_ids_stable_across_builds(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        first, second = to_indexed(graph), to_indexed(graph)
        assert first.edges == second.edges
        assert first.nodes == second.nodes


class TestEdgeListConversion:
    def test_round_trip(self):
        graph = from_edge_list([(2, 1), (3, 2)], nodes=[9])
        assert graph.number_of_nodes() == 4
        assert to_edge_list(graph) == [(1, 2), (2, 3)]


class TestAdjacencyConversion:
    def test_from_adjacency(self):
        graph = from_adjacency({1: [2, 3], 2: [1], 4: []})
        assert graph.has_edge(1, 2)
        assert graph.has_edge(1, 3)
        assert graph.has_node(4)
        assert graph.degree(4) == 0

    def test_from_adjacency_skips_self_reference(self):
        graph = from_adjacency({1: [1, 2]})
        assert graph.number_of_edges() == 1

    def test_to_adjacency_is_a_copy(self):
        graph = Graph(edges=[(1, 2)])
        adjacency = to_adjacency(graph)
        adjacency[1].add(99)
        assert not graph.has_edge(1, 99)


class TestNetworkxInterop:
    def test_round_trip(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_edges() == 3
        back = from_networkx(nx_graph)
        assert back == graph

    def test_from_networkx_drops_self_loops(self):
        nx_graph = networkx.Graph()
        nx_graph.add_edges_from([(1, 1), (1, 2)])
        graph = from_networkx(nx_graph)
        assert graph.number_of_edges() == 1

    def test_triangle_counts_match_networkx(self):
        nx_graph = networkx.les_miserables_graph()
        graph = from_networkx(nx_graph)
        from repro.graphs.algorithms import triangle_count

        expected = sum(networkx.triangles(nx_graph).values()) // 3
        assert triangle_count(graph) == expected

    def test_clustering_matches_networkx(self):
        nx_graph = networkx.karate_club_graph()
        graph = from_networkx(nx_graph)
        from repro.graphs.algorithms import average_clustering

        assert average_clustering(graph) == pytest.approx(
            networkx.average_clustering(nx_graph)
        )

    def test_core_numbers_match_networkx(self):
        nx_graph = networkx.karate_club_graph()
        graph = from_networkx(nx_graph)
        from repro.graphs.algorithms import core_numbers

        assert core_numbers(graph) == networkx.core_number(nx_graph)
