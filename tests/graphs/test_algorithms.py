"""Tests for classic graph algorithms."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs.algorithms import (
    average_clustering,
    average_shortest_path_length,
    bfs_distances,
    connected_components,
    core_numbers,
    is_connected,
    largest_connected_component,
    local_clustering,
    paths_of_length_three,
    paths_of_length_two,
    shortest_path_length,
    triangle_count,
    triangles_per_node,
)
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph


class TestBFS:
    def test_distances_on_path(self):
        graph = path_graph(5)
        assert bfs_distances(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_ignore_other_component(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        assert bfs_distances(graph, 0) == {0: 0, 1: 1}

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(Graph(), 0)

    def test_shortest_path_length(self):
        graph = cycle_graph(6)
        assert shortest_path_length(graph, 0, 3) == 3
        assert shortest_path_length(graph, 0, 0) == 0

    def test_shortest_path_disconnected_is_none(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        assert shortest_path_length(graph, 0, 3) is None

    def test_average_shortest_path_on_path_graph(self):
        # path 0-1-2: pairs (0,1)=1, (0,2)=2, (1,2)=1 -> mean 4/3
        graph = path_graph(3)
        assert average_shortest_path_length(graph) == pytest.approx(4 / 3)

    def test_average_shortest_path_with_sampled_sources(self):
        graph = complete_graph(6)
        assert average_shortest_path_length(graph, sample_sources=[0, 1]) == 1.0

    def test_average_shortest_path_empty_graph(self):
        assert average_shortest_path_length(Graph()) == 0.0


class TestComponents:
    def test_connected_components(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 4)], nodes=[9])
        components = connected_components(graph)
        as_sets = sorted(components, key=len, reverse=True)
        assert as_sets[0] == {0, 1, 2}
        assert {3, 4} in components
        assert {9} in components

    def test_largest_connected_component(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        assert largest_connected_component(graph) == {0, 1, 2}

    def test_largest_component_empty_graph(self):
        assert largest_connected_component(Graph()) == set()

    def test_is_connected(self):
        assert is_connected(complete_graph(4))
        assert not is_connected(Graph(edges=[(0, 1), (2, 3)]))
        assert is_connected(Graph())


class TestCoreNumbers:
    def test_complete_graph_core(self):
        graph = complete_graph(5)
        assert set(core_numbers(graph).values()) == {4}

    def test_star_graph_core(self):
        graph = star_graph(5)
        cores = core_numbers(graph)
        assert cores[0] == 1
        assert all(cores[leaf] == 1 for leaf in range(1, 6))

    def test_clique_with_pendant(self):
        graph = complete_graph(4)
        graph.add_edge(0, 99)
        cores = core_numbers(graph)
        assert cores[99] == 1
        assert cores[1] == 3


class TestTrianglesAndClustering:
    def test_triangle_counts(self):
        graph = complete_graph(4)  # K4 has 4 triangles, each node in 3
        per_node = triangles_per_node(graph)
        assert set(per_node.values()) == {3}
        assert triangle_count(graph) == 4

    def test_no_triangles_in_cycle4(self):
        assert triangle_count(cycle_graph(4)) == 0

    def test_local_clustering(self):
        graph = Graph(edges=[(0, 1), (0, 2), (1, 2), (0, 3)])
        assert local_clustering(graph, 0) == pytest.approx(1 / 3)
        assert local_clustering(graph, 3) == 0.0

    def test_average_clustering_complete(self):
        assert average_clustering(complete_graph(4)) == pytest.approx(1.0)

    def test_average_clustering_empty(self):
        assert average_clustering(Graph()) == 0.0


class TestPathEnumeration:
    def test_paths_of_length_two(self):
        graph = Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
        intermediates = {w for (w,) in paths_of_length_two(graph, 0, 1)}
        assert intermediates == {2, 3}

    def test_paths_of_length_three_simple(self):
        # 0 - 2 - 3 - 1 is the only 3-path between 0 and 1
        graph = Graph(edges=[(0, 2), (2, 3), (3, 1)])
        assert list(paths_of_length_three(graph, 0, 1)) == [(2, 3)]

    def test_paths_of_length_three_excludes_endpoints(self):
        # path through the other endpoint (0-1-x-1) must not be produced
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        paths = set(paths_of_length_three(graph, 0, 3))
        assert (1, 2) in paths
        assert all(0 not in pair and 3 not in pair for pair in paths)
