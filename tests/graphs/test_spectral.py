"""Tests for Laplacian spectral quantities."""

import pytest

from repro.exceptions import UtilityError
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.spectral import (
    _jacobi_eigenvalues,
    algebraic_connectivity,
    laplacian_eigenvalues,
    laplacian_matrix,
    second_largest_laplacian_eigenvalue,
)


class TestLaplacianMatrix:
    def test_structure(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        matrix = laplacian_matrix(graph)
        # nodes sorted by str: 0, 1, 2
        assert matrix[0][0] == 1.0
        assert matrix[1][1] == 2.0
        assert matrix[0][1] == -1.0
        assert matrix[0][2] == 0.0

    def test_rows_sum_to_zero(self):
        graph = complete_graph(5)
        for row in laplacian_matrix(graph):
            assert sum(row) == pytest.approx(0.0)


class TestEigenvalues:
    def test_complete_graph_spectrum(self):
        # K_n Laplacian eigenvalues: 0 with multiplicity 1, n with multiplicity n-1
        values = laplacian_eigenvalues(complete_graph(4))
        assert values[0] == pytest.approx(0.0, abs=1e-8)
        assert values[1:] == pytest.approx([4.0, 4.0, 4.0])

    def test_smallest_eigenvalue_always_zero(self):
        values = laplacian_eigenvalues(path_graph(6))
        assert values[0] == pytest.approx(0.0, abs=1e-8)

    def test_second_largest(self):
        assert second_largest_laplacian_eigenvalue(complete_graph(4)) == pytest.approx(4.0)
        assert second_largest_laplacian_eigenvalue(Graph(nodes=[1])) == 0.0

    def test_algebraic_connectivity_star(self):
        # star S_n: eigenvalues 0, 1 (n-1 times), n+1... for star with n leaves: 0,1,...,n+1
        value = algebraic_connectivity(star_graph(4))
        assert value == pytest.approx(1.0)

    def test_disconnected_graph_has_zero_connectivity(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        assert algebraic_connectivity(graph) == pytest.approx(0.0, abs=1e-8)

    def test_size_limit(self):
        graph = path_graph(50)
        with pytest.raises(UtilityError):
            laplacian_eigenvalues(graph, max_nodes=10)

    def test_empty_graph(self):
        assert laplacian_eigenvalues(Graph()) == []


class TestJacobiFallback:
    def test_matches_known_spectrum(self):
        matrix = laplacian_matrix(complete_graph(4))
        values = sorted(_jacobi_eigenvalues(matrix))
        assert values[0] == pytest.approx(0.0, abs=1e-6)
        assert values[-1] == pytest.approx(4.0, abs=1e-6)

    def test_diagonal_matrix(self):
        values = sorted(_jacobi_eigenvalues([[2.0, 0.0], [0.0, 5.0]]))
        assert values == pytest.approx([2.0, 5.0])
