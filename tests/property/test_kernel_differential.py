"""Differential tests: array kernel vs hash-set reference vs naive recount.

The array-backed coverage kernel (``CoverageState``), the original hash-set
state (``SetCoverageState``) and a from-scratch recount of the graph are
three implementations of the same semantics.  These tests assert they are
indistinguishable — identical marginal gains, identical similarity traces and
identical protector sequences (the tie-breaking is shared: smallest
``edge_sort_key`` among maxima) — across all three paper motifs on random
graphs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy
from repro.graphs.graph import Graph

ENGINES = ("coverage", "coverage-set", "recount")


def build_problem(seed: int, motif_index: int):
    rng = random.Random(seed)
    n = rng.randint(6, 13)
    p = rng.uniform(0.2, 0.5)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if len(edges) < 3:
        return None
    rng.shuffle(edges)
    targets = edges[: rng.randint(1, 3)]
    motif = ("triangle", "rectangle", "rectri")[motif_index % 3]
    return TPPProblem(graph, targets, motif=motif)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=30, deadline=None)
def test_states_agree_on_gains_and_deletions(seed, motif_index):
    """Array kernel and set state answer every query identically along a
    random deletion sequence."""
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    index = problem.build_index()
    kernel = index.new_state()
    reference = index.new_set_state()
    rng = random.Random(seed + 17)
    edges = sorted(problem.phase1_graph.edges())
    rng.shuffle(edges)
    for edge in edges[: min(6, len(edges))]:
        assert kernel.gain(edge) == reference.gain(edge)
        assert kernel.gain_by_target(edge) == reference.gain_by_target(edge)
        assert kernel.delete_edge(edge) == reference.delete_edge(edge)
        assert kernel.total_similarity() == reference.total_similarity()
        assert kernel.similarity_by_target() == reference.similarity_by_target()
        assert kernel.candidate_edges() == reference.candidate_edges()
    assert kernel.deleted_edges == reference.deleted_edges


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=30, deadline=None)
def test_kernel_top_gain_matches_full_scan(seed, motif_index):
    """The heap-backed top_gain_edge equals the argmax of a full gain sweep,
    tie-breaking included, after every deletion."""
    from repro.core.selection import argmax_edge

    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    state = problem.build_index().new_state()
    while True:
        top = state.top_gain_edge()
        best = argmax_edge(state.candidate_edges(), state.gain)
        if top is None:
            assert best is None or best[1] <= 0
            break
        assert best is not None
        assert top == best
        state.delete_edge(top[0])


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=25, deadline=None)
def test_sgb_identical_across_all_engines(seed, motif_index):
    """SGB selects the identical protector sequence and similarity trace on
    the kernel, the set reference and the naive recount."""
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    budget = min(5, max(1, problem.initial_similarity()))
    results = [sgb_greedy(problem, budget, engine=engine) for engine in ENGINES]
    baseline = results[0]
    for result in results[1:]:
        assert result.protectors == baseline.protectors
        assert result.similarity_trace == baseline.similarity_trace


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=15, deadline=None)
def test_ct_identical_across_all_engines(seed, motif_index):
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    budget = min(5, max(1, problem.initial_similarity()))
    results = [
        ct_greedy(problem, budget, budget_division="tbd", engine=engine)
        for engine in ENGINES
    ]
    baseline = results[0]
    for result in results[1:]:
        assert result.protectors == baseline.protectors
        assert result.similarity_trace == baseline.similarity_trace
        assert result.allocation == baseline.allocation


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=15, deadline=None)
def test_wt_identical_across_all_engines(seed, motif_index):
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    budget = min(5, max(1, problem.initial_similarity()))
    results = [
        wt_greedy(problem, budget, budget_division="tbd", engine=engine)
        for engine in ENGINES
    ]
    baseline = results[0]
    for result in results[1:]:
        assert result.protectors == baseline.protectors
        assert result.similarity_trace == baseline.similarity_trace
        assert result.allocation == baseline.allocation


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=20, deadline=None)
def test_best_scored_pair_heap_matches_full_sweep(seed, motif_index):
    """The kernel's per-target-heap argmax over (target, edge) pairs equals
    the generic edge-major sweep on the set engine — key, charged target and
    selected edge — along a full greedy deletion sequence, for both the
    all-targets (CT) and single-target (WT) query shapes."""
    from repro.core.engines import make_engine

    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    constant = max(problem.constant, 1)
    kernel = make_engine(problem, "coverage")
    reference = make_engine(problem, "coverage-set")
    targets = problem.targets
    # alternate between the CT shape (all targets) and the WT shape (each
    # target alone) so the heaps are exercised under both access patterns
    while True:
        best = kernel.best_scored_pair(targets, constant)
        assert best == reference.best_scored_pair(targets, constant)
        for target in targets:
            single = kernel.best_scored_pair((target,), constant)
            assert single == reference.best_scored_pair((target,), constant)
        if best is None:
            break
        _, _, edge = best
        assert kernel.commit(edge) == reference.commit(edge)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=20, deadline=None)
def test_kernel_copy_is_independent_and_equivalent(seed, motif_index):
    """A copied kernel state diverges independently and still answers like a
    fresh reference state replaying the same deletions."""
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    index = problem.build_index()
    state = index.new_state()
    edges = sorted(problem.phase1_graph.edges())
    rng = random.Random(seed)
    rng.shuffle(edges)
    prefix, suffix = edges[:2], edges[2:4]
    state.delete_edges(prefix)
    clone = state.copy()
    clone.delete_edges(suffix)
    # original untouched by the clone's deletions
    reference = index.new_set_state()
    reference.delete_edges(prefix)
    assert state.total_similarity() == reference.total_similarity()
    assert state.candidate_edges() == reference.candidate_edges()
    # clone matches a reference replay of the full sequence
    reference.delete_edges(suffix)
    assert clone.total_similarity() == reference.total_similarity()
    assert clone.candidate_edges() == reference.candidate_edges()
    top = clone.top_gain_edge()
    if top is None:
        assert not reference.candidate_edges()
    else:
        edge, gain = top
        assert gain == reference.gain(edge)
        assert gain == max(reference.gain(e) for e in reference.candidate_edges())
