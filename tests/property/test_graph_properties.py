"""Property-based tests for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.algorithms import connected_components, core_numbers, triangle_count
from repro.graphs.graph import Graph, canonical_edge


def edge_lists(max_nodes: int = 12, max_edges: int = 40):
    """Strategy generating random edge lists over a small node universe."""
    nodes = st.integers(min_value=0, max_value=max_nodes - 1)
    edge = st.tuples(nodes, nodes).filter(lambda pair: pair[0] != pair[1])
    return st.lists(edge, max_size=max_edges)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_edge_count_matches_canonical_set(edges):
    graph = Graph(edges=edges)
    canonical = {canonical_edge(u, v) for u, v in edges}
    assert graph.number_of_edges() == len(canonical)
    assert graph.edge_set() == canonical


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_degree_sum_is_twice_edge_count(edges):
    graph = Graph(edges=edges)
    assert sum(graph.degrees().values()) == 2 * graph.number_of_edges()


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_copy_equals_original(edges):
    graph = Graph(edges=edges)
    assert graph.copy() == graph


@given(edge_lists(), st.integers(min_value=0, max_value=11))
@settings(max_examples=60, deadline=None)
def test_remove_then_add_edge_round_trips(edges, index):
    graph = Graph(edges=edges)
    all_edges = sorted(graph.edges())
    if not all_edges:
        return
    edge = all_edges[index % len(all_edges)]
    original = graph.copy()
    graph.remove_edge(*edge)
    graph.add_edge(*edge)
    assert graph == original


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_components_partition_nodes(edges):
    graph = Graph(edges=edges)
    components = connected_components(graph)
    all_nodes = [node for component in components for node in component]
    assert len(all_nodes) == graph.number_of_nodes()
    assert set(all_nodes) == set(graph.nodes())


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_core_number_bounded_by_degree(edges):
    graph = Graph(edges=edges)
    cores = core_numbers(graph)
    for node, core in cores.items():
        assert 0 <= core <= graph.degree(node)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_triangle_count_never_negative_and_stable_under_copy(edges):
    graph = Graph(edges=edges)
    count = triangle_count(graph)
    assert count >= 0
    assert triangle_count(graph.copy()) == count


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_subgraph_of_all_nodes_is_identity(edges):
    graph = Graph(edges=edges)
    assert graph.subgraph(list(graph.nodes())) == graph
