"""Property-based invariants of the protector-selection algorithms."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import random_deletion, random_target_subgraph_deletion
from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.verification import verify_result
from repro.core.wt import wt_greedy
from repro.graphs.graph import Graph


def build_problem(seed: int, motif_index: int):
    rng = random.Random(seed)
    n = rng.randint(7, 14)
    p = rng.uniform(0.2, 0.5)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if len(edges) < 4:
        return None
    rng.shuffle(edges)
    targets = edges[: rng.randint(1, 3)]
    motif = ("triangle", "rectangle", "rectri")[motif_index % 3]
    return TPPProblem(graph, targets, motif=motif)


ALGORITHMS = [
    ("sgb", lambda problem, budget: sgb_greedy(problem, budget)),
    ("ct-tbd", lambda problem, budget: ct_greedy(problem, budget, budget_division="tbd")),
    ("wt-tbd", lambda problem, budget: wt_greedy(problem, budget, budget_division="tbd")),
    ("rd", lambda problem, budget: random_deletion(problem, budget, seed=0)),
    ("rdt", lambda problem, budget: random_target_subgraph_deletion(problem, budget, seed=0)),
]


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=6),
    st.sampled_from([name for name, _ in ALGORITHMS]),
)
@settings(max_examples=60, deadline=None)
def test_universal_result_invariants(seed, motif_index, budget, algorithm_name):
    """Every algorithm respects the budget, never deletes targets, produces a
    non-increasing similarity trace and a trace consistent with recounting."""
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    algorithm = dict(ALGORITHMS)[algorithm_name]
    result = algorithm(problem, budget)

    assert result.budget_used <= budget
    assert len(result.protectors) == len(set(result.protectors))
    assert all(edge not in problem.target_set() for edge in result.protectors)
    assert all(problem.phase1_graph.has_edge(*edge) for edge in result.protectors)

    trace = result.similarity_trace
    assert trace[0] == result.initial_similarity
    assert all(a >= b for a, b in zip(trace, trace[1:]))
    assert len(trace) == result.budget_used + 1

    assert verify_result(problem, result)


GREEDY_RATIO = 1 - 1 / 2.718281828459045


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_sgb_approximation_dominates_other_variants(seed, motif_index):
    """Theorem 3, applied correctly: SGB-Greedy does *not* pointwise dominate
    the per-target variants (it is only a (1 - 1/e)-approximation, and CT/WT
    optimise a different constrained objective), but its dissimilarity gain is
    at least (1 - 1/e) times the gain of ANY feasible k-deletion solution —
    including whatever CT, WT and the random baselines selected."""
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    budget = min(4, max(1, problem.initial_similarity()))
    sgb = sgb_greedy(problem, budget).dissimilarity_gain
    rivals = [
        ct_greedy(problem, budget, budget_division="tbd").dissimilarity_gain,
        wt_greedy(problem, budget, budget_division="tbd").dissimilarity_gain,
        random_deletion(problem, budget, seed=1).dissimilarity_gain,
        random_target_subgraph_deletion(problem, budget, seed=1).dissimilarity_gain,
    ]
    for rival_gain in rivals:
        assert sgb >= GREEDY_RATIO * rival_gain - 1e-9


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_sgb_first_step_is_best_single_deletion(seed, motif_index):
    """With budget >= 1 the greedy gain is bounded below by the best
    single-step gain (the first deletion IS the argmax single deletion)."""
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    budget = min(4, max(1, problem.initial_similarity()))
    result = sgb_greedy(problem, budget)
    state = problem.build_index().new_state()
    best_single = max(
        (state.gain(edge) for edge in problem.build_index().candidate_edges()),
        default=0,
    )
    assert result.dissimilarity_gain >= best_single
    if result.similarity_trace and len(result.similarity_trace) > 1:
        first_gain = result.similarity_trace[0] - result.similarity_trace[1]
        assert first_gain == best_single


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=20, deadline=None)
def test_sgb_beats_random_deletion_in_expectation(seed, motif_index):
    """SGB-Greedy protects at least as well as blind random deletion *in
    expectation*: averaged over a battery of fixed RD seeds (an unbiased
    estimate of the expected RD outcome), the random baseline never ends with
    lower similarity than the greedy selection.  (The old pointwise
    formulation of this test was false: single lucky RD draws and the CT/WT
    variants can individually beat SGB on adversarial instances.)"""
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    budget = min(4, max(1, problem.initial_similarity()))
    sgb_final = sgb_greedy(problem, budget).final_similarity
    rd_finals = [
        random_deletion(problem, budget, seed=rd_seed).final_similarity
        for rd_seed in range(10)
    ]
    mean_rd_final = sum(rd_finals) / len(rd_finals)
    assert sgb_final <= mean_rd_final + 1e-9


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_sgb_reaches_full_protection_with_unbounded_budget(seed, motif_index):
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
    assert result.fully_protected


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_greedy_achieves_max_k_cover_approximation(seed):
    """Theorem 3: greedy coverage is at least (1 - 1/e) of the optimum.

    On small instances the optimum is computed by brute force over all
    protector subsets of size k.
    """
    from itertools import combinations

    problem = build_problem(seed, 0)  # triangle only: keeps brute force small
    if problem is None or problem.initial_similarity() == 0:
        return
    budget = 2
    candidates = sorted(problem.build_index().candidate_edges())
    if len(candidates) > 12:
        candidates = candidates[:12]
    best = 0
    for subset in combinations(candidates, min(budget, len(candidates))):
        state = problem.build_index().new_state()
        state.delete_edges(subset)
        best = max(best, problem.initial_similarity() - state.total_similarity())
    greedy_gain = sgb_greedy(problem, budget).dissimilarity_gain
    assert greedy_gain >= (1 - 1 / 2.718281828459045) * best - 1e-9
