"""Property-based tests for the paper's central theoretical claims.

Lemmas 1-4: the subgraph dissimilarity is monotone and submodular under link
deletion, for every motif.  These are exactly the properties the greedy
approximation guarantees rest on, so they are verified on randomly generated
graphs and random deletion sets rather than only on hand-picked examples.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph, canonical_edge
from repro.motifs.similarity import total_similarity


def random_problem(draw_seed: int, motif_index: int):
    """Build a random phase-1 graph plus targets from a seed (deterministic)."""
    rng = random.Random(draw_seed)
    n = rng.randint(6, 14)
    p = rng.uniform(0.15, 0.45)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    rng.shuffle(edges)
    targets = edges[: min(3, len(edges))]
    graph.remove_edges_from(targets)  # phase 1
    motif = ("triangle", "rectangle", "rectri")[motif_index % 3]
    return graph, targets, motif


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=50, deadline=None)
def test_dissimilarity_monotone_under_deletion(seed, motif_index):
    """Lemma 1/3: deleting any additional edge never increases the similarity."""
    graph, targets, motif = random_problem(seed, motif_index)
    if not targets:
        return
    base = total_similarity(graph, targets, motif)
    for edge in graph.edges():
        reduced = total_similarity(graph.without_edges([edge]), targets, motif)
        assert reduced <= base


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=50, deadline=None)
def test_dissimilarity_submodular_under_deletion(seed, motif_index):
    """Lemma 2/4: marginal gains shrink as the deleted set grows (A ⊆ B)."""
    graph, targets, motif = random_problem(seed, motif_index)
    if not targets or graph.number_of_edges() < 3:
        return
    rng = random.Random(seed + 1)
    edges = sorted(graph.edges())
    rng.shuffle(edges)
    # A ⊂ B: B adds one extra deleted edge x; p is a third edge
    p = edges[0]
    x = edges[1]
    a_set = edges[2 : 2 + rng.randint(0, max(0, len(edges) - 3))]
    b_set = a_set + [x]

    def gain(deleted):
        before = total_similarity(graph.without_edges(deleted), targets, motif)
        after = total_similarity(graph.without_edges(list(deleted) + [p]), targets, motif)
        return before - after

    assert gain(a_set) >= gain(b_set)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_similarity_is_order_independent(seed, motif_index):
    """Deleting a set of protectors gives the same similarity in any order."""
    graph, targets, motif = random_problem(seed, motif_index)
    if not targets or graph.number_of_edges() < 4:
        return
    rng = random.Random(seed + 2)
    edges = sorted(graph.edges())
    rng.shuffle(edges)
    chosen = edges[:3]
    forward = total_similarity(graph.without_edges(chosen), targets, motif)
    backward = total_similarity(graph.without_edges(list(reversed(chosen))), targets, motif)
    assert forward == backward


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_only_target_subgraph_edges_matter(seed, motif_index):
    """Lemma 5: deleting edges outside every target subgraph changes nothing."""
    from repro.motifs.enumeration import TargetSubgraphIndex

    graph, targets, motif = random_problem(seed, motif_index)
    if not targets:
        return
    index = TargetSubgraphIndex(graph, targets, motif)
    relevant = index.candidate_edges()
    irrelevant = [edge for edge in graph.edges() if edge not in relevant]
    base = total_similarity(graph, targets, motif)
    assert total_similarity(graph.without_edges(irrelevant), targets, motif) == base
