"""Property suite: sharded serving is a refactoring, not an approximation.

The sharding theorem under test: phase 1 hides *every* sensitive link, and
each target's motif instances are enumerated independently on that shared
phase-1 graph — so partitioning the targets over K shard sub-sessions
changes where the work happens but not a single answer.  These tests drive
random instances through K ∈ {1, 2, 3, 5} and pin, by bytes:

* every single-shard route (including K = 1 entirely) answers bit-identical
  protectors *and* traces to the unsharded session;
* every cross-shard merged trace equals the unsharded session's independent
  replay of the merged protector sequence (``evaluate_trace`` ground truth);
* the shard assignment is a pure function of the target *set* — invariant
  under permutation and insertion order;
* applying an edge delta shard-by-shard converges to a fresh sharded build
  on the updated graph, per-shard index arrays compared by bytes;
* no released graph ever leaks a sensitive link, even under concurrent
  scatter-gather load.
"""

import random
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph, canonical_edge, edge_sort_key
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS
from repro.motifs.updates import EdgeDelta
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    ShardedProtectionService,
    shard_assignment,
)

SHARD_COUNTS = (1, 2, 3, 5)

METHODS = ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD")


def fingerprint(index):
    arrays = tuple(getattr(index, name).tobytes() for name in INDEX_ARRAY_FIELDS)
    return arrays + (index._target_ranges, index._candidate_ids)


def trace(result):
    return (result.protectors, result.similarity_trace)


def random_instance(seed, max_nodes=16):
    """Return ``(graph, targets)`` with the targets still present as edges.

    Targets come back in canonical (``edge_sort_key``) order: the sharded
    constructor canonicalises its target order by design (that is what
    makes the layout permutation-invariant), so the bit-identity claim is
    against an unsharded session over the same canonical order — methods
    that iterate targets (the :TBD divisions) break similarity ties by
    position.
    """
    rng = random.Random(seed)
    n = rng.randint(6, max_nodes)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < rng.uniform(0.25, 0.5):
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if len(edges) < 6:
        return None, None
    targets = rng.sample(edges, rng.randint(2, min(5, len(edges) - 2)))
    return graph, sorted(
        (canonical_edge(*target) for target in targets), key=edge_sort_key
    )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_sharded_answers_match_unsharded_ground_truth(seed):
    """For every K: K=1 is bit-identical, and every merged cross-shard
    answer replays to the identical trace on the *unsharded* session."""
    graph, targets = random_instance(seed)
    if graph is None:
        return
    unsharded = ProtectionService(graph, targets, motif="triangle")
    if unsharded.pristine_similarity() == 0:
        return
    budget = max(1, unsharded.pristine_similarity() // 2)
    method = METHODS[seed % len(METHODS)]
    request = ProtectionRequest(method, budget)
    reference = unsharded.solve(request)
    for shards in SHARD_COUNTS:
        sharded = ShardedProtectionService(
            graph, targets, motif="triangle", shards=shards
        )
        assert sharded.constant == unsharded.problem.constant
        assert sharded.pristine_similarity() == unsharded.pristine_similarity()
        result = sharded.solve(request)
        assert result.initial_similarity == reference.initial_similarity
        if sharded.shard_count == 1:
            # one shard is literally the unsharded session: bit-identity
            assert trace(result) == trace(reference), (seed, shards, method)
            continue
        # the merged trace must be the truth, not an approximation: the
        # unsharded session independently replays the merged protector
        # sequence and must land on the same numbers step by step
        assert result.similarity_trace == unsharded.evaluate_trace(
            result.protectors
        ), (seed, shards, method)
        # idempotent dedup: no protector appears twice in the merge
        assert len(set(result.protectors)) == len(result.protectors)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_single_shard_routes_are_bit_identical_subset_solves(seed):
    """A request owned by one shard answers exactly like the unsharded
    session's subset sub-session over the same targets — for every shard
    of every layout, method and engine untouched."""
    graph, targets = random_instance(seed)
    if graph is None:
        return
    unsharded = ProtectionService(graph, targets, motif="triangle")
    if unsharded.pristine_similarity() == 0:
        return
    budget = max(1, unsharded.pristine_similarity() // 3)
    method = METHODS[(seed // 7) % len(METHODS)]
    for shards in SHARD_COUNTS[1:]:
        sharded = ShardedProtectionService(
            graph, targets, motif="triangle", shards=shards
        )
        for piece in sharded.assignment:
            request = ProtectionRequest(method, budget, targets=piece)
            assert trace(sharded.solve(request)) == trace(
                unsharded.solve(request)
            ), (seed, shards, piece)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_shard_assignment_is_permutation_invariant(seed, shuffle_seed):
    graph, targets = random_instance(seed)
    if graph is None:
        return
    shuffled = list(targets)
    random.Random(shuffle_seed).shuffle(shuffled)
    # flipping endpoint order must not matter either: assignment works on
    # canonical edges
    flipped = [(v, u) if shuffle_seed % 2 else (u, v) for u, v in shuffled]
    for shards in SHARD_COUNTS:
        assert shard_assignment(flipped, shards) == shard_assignment(
            targets, shards
        ), (seed, shuffle_seed, shards)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_sharded_delta_converges_to_fresh_sharded_build(seed):
    """``apply_delta`` on a sharded session lands, shard by shard and by
    bytes, on the layout a fresh build over the updated graph produces."""
    graph, targets = random_instance(seed)
    if graph is None:
        return
    target_set = {canonical_edge(*target) for target in targets}
    phase1_edges = [
        canonical_edge(*edge)
        for edge in sorted(graph.without_edges(targets).edges())
        if canonical_edge(*edge) not in target_set
    ]
    rng = random.Random(seed + 1)
    deletions = rng.sample(phase1_edges, min(3, len(phase1_edges)))
    nodes = sorted(graph.nodes())
    insertions = []
    live = set(phase1_edges)
    for _ in range(4):
        u, v = rng.sample(nodes, 2)
        edge = canonical_edge(u, v)
        if edge not in live and edge not in target_set and edge not in deletions:
            live.add(edge)
            insertions.append(edge)
    delta = EdgeDelta.from_edges(insert=insertions, delete=deletions)
    if not delta.operations:
        return
    shards = SHARD_COUNTS[seed % len(SHARD_COUNTS)]
    sharded = ShardedProtectionService(
        graph, targets, motif="triangle", shards=shards
    )
    outcome = sharded.apply_delta(delta)
    updated = graph.copy()
    for edge in deletions:
        updated.remove_edge(*edge)
    updated.add_edges_from(insertions)
    fresh = ShardedProtectionService(
        updated,
        targets,
        motif="triangle",
        constant=outcome.constant,
        shards=shards,
    )
    assert sharded.constant == fresh.constant
    assert sharded.pristine_similarity() == fresh.pristine_similarity()
    assert sharded.content_hash() == fresh.content_hash()
    for position, (spliced, rebuilt) in enumerate(
        zip(sharded.shards, fresh.shards)
    ):
        assert spliced.targets == rebuilt.targets, (seed, shards, position)
        assert fingerprint(spliced.index) == fingerprint(rebuilt.index), (
            seed,
            shards,
            position,
        )
    # untouched shards really were untouched: their delta outcome recorded
    # no changed targets
    for position, shard_outcome in enumerate(outcome.outcomes):
        if position not in outcome.touched_shards:
            assert shard_outcome.changed_targets == ()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_concurrent_scatter_gather_never_leaks_a_sensitive_link(seed):
    """Released graphs from concurrent cross-shard solves never contain any
    session target — shard-local or not — and never invent edges."""
    graph, targets = random_instance(seed)
    if graph is None:
        return
    sharded = ShardedProtectionService(graph, targets, motif="triangle", shards=3)
    if sharded.pristine_similarity() == 0:
        return
    requests = [
        ProtectionRequest(METHODS[i % len(METHODS)], budget)
        for i, budget in enumerate((1, 2, 3, 4))
    ]
    original_edges = {canonical_edge(*edge) for edge in graph.edges()}
    with ThreadPoolExecutor(max_workers=4) as pool:
        results = list(pool.map(sharded.solve, requests))
    for result in results:
        released = sharded.released_graph(result.protectors)
        for target in sharded.targets:
            assert not released.has_edge(*target), (seed, target)
        for protector in result.protectors:
            assert not released.has_edge(*protector)
        for edge in released.edges():
            assert canonical_edge(*edge) in original_edges
    # concurrency never corrupted the shared session
    assert sharded.queries_served == len(requests)
