"""Property tests: every index-construction strategy builds the same index.

The vectorised assembly (``assembly="numpy"``), the seed's element-wise
loops (``assembly="python"``) and the parallel pass-1 fan-out
(``build_workers=N``) must all produce **bit-identical** flat arrays — and
therefore identical initial similarities, candidate orders and full greedy
traces — on every instance.  The edge-id order is load-bearing for the
greedy tie-breaking, so these tests compare the arrays by bytes, not just by
value.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import TPPProblem
from repro.graphs.graph import Graph, canonical_edge
from repro.motifs.base import MotifPattern
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS, TargetSubgraphIndex
from repro.service import ProtectionRequest, ProtectionService

MOTIFS = ("triangle", "rectangle", "rectri")

GREEDY_METHODS = ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD")


def fingerprint(index):
    arrays = tuple(getattr(index, name).tobytes() for name in INDEX_ARRAY_FIELDS)
    return arrays + (index._target_ranges, index._candidate_ids)


def random_instance(seed, max_nodes=16):
    """Return ``(graph, targets)`` with the targets still present as edges."""
    rng = random.Random(seed)
    n = rng.randint(6, max_nodes)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < rng.uniform(0.25, 0.5):
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if len(edges) < 4:
        return None, None
    targets = rng.sample(edges, rng.randint(1, min(4, len(edges) - 2)))
    return graph, [canonical_edge(*target) for target in targets]


def phase1(graph, targets):
    return graph.without_edges(targets)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=len(MOTIFS) - 1),
)
@settings(max_examples=40, deadline=None)
def test_numpy_assembly_matches_seed_assembly(seed, motif_index):
    graph, targets = random_instance(seed)
    if graph is None:
        return
    motif = MOTIFS[motif_index]
    removed = phase1(graph, targets)
    vectorized = TargetSubgraphIndex(removed, targets, motif)
    reference = TargetSubgraphIndex(removed, targets, motif, assembly="python")
    assert fingerprint(vectorized) == fingerprint(reference)
    for target in targets:
        assert vectorized.initial_similarity(target) == reference.initial_similarity(
            target
        )
    assert vectorized.candidate_edge_list() == reference.candidate_edge_list()


def greedy_traces(graph, targets, motif, index, budget):
    """Run the three greedy methods on the given prebuilt index."""
    problem = TPPProblem(graph, targets, motif=motif)
    problem.adopt_index(index)
    service = ProtectionService(problem)
    traces = {}
    for method in GREEDY_METHODS:
        result = service.solve(ProtectionRequest(method, budget))
        traces[method] = (result.protectors, result.similarity_trace)
    return traces


def test_parallel_build_bit_identical_and_greedy_traces_agree():
    checked = 0
    for seed in range(12):
        graph, targets = random_instance(seed)
        if graph is None:
            continue
        motif = MOTIFS[seed % len(MOTIFS)]
        removed = phase1(graph, targets)
        serial = TargetSubgraphIndex(removed, targets, motif)
        if serial.number_of_instances() == 0:
            continue
        reference = fingerprint(serial)
        budget = max(1, serial.number_of_instances() // 2)
        reference_traces = greedy_traces(graph, targets, motif, serial, budget)
        for workers in (1, 2, 4):
            parallel = TargetSubgraphIndex(
                removed, targets, motif, build_workers=workers
            )
            assert fingerprint(parallel) == reference, (seed, motif, workers)
            assert (
                greedy_traces(graph, targets, motif, parallel, budget)
                == reference_traces
            ), (seed, motif, workers)
        checked += 1
        if checked >= 4:
            break
    assert checked >= 2, "not enough non-trivial random instances"


def test_parallel_build_with_python_assembly_matches_too():
    graph, targets = random_instance(3)
    removed = phase1(graph, targets)
    serial = TargetSubgraphIndex(removed, targets, "triangle", assembly="python")
    parallel = TargetSubgraphIndex(
        removed, targets, "triangle", build_workers=2, assembly="python"
    )
    assert fingerprint(parallel) == fingerprint(serial)


class TupleOnlyRectangle(MotifPattern):
    """A custom motif with no id-space override: the parallel dispatcher must
    route it through the same tuple-enumeration fallback as the serial build."""

    name = "tuple-only-rectangle"

    def enumerate_instances(self, graph, target):
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        neighbors_v = graph.neighbors(v)
        for a in graph.neighbors(u):
            if a == v or a == u:
                continue
            for b in graph.neighbors(a):
                if b == u or b == v or b == a:
                    continue
                if b in neighbors_v:
                    yield frozenset(
                        (
                            self._canonical(u, a),
                            self._canonical(a, b),
                            self._canonical(b, v),
                        )
                    )


class EmptyInstanceTriangle(MotifPattern):
    """Yields triangle instances plus one pathological zero-arity instance."""

    name = "empty-instance-triangle"

    def enumerate_instances(self, graph, target):
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        yield frozenset()  # an instance with no protector edges
        for w in graph.common_neighbors(u, v):
            yield frozenset((self._canonical(u, w), self._canonical(w, v)))


def test_zero_arity_instances_survive_the_vectorized_kernel():
    """A zero-arity instance has no memberships: it counts toward similarity,
    can never be broken, and must not corrupt the vectorized gain passes
    (the seed's element-wise loops skipped it implicitly)."""
    graph, targets = random_instance(7)
    removed = phase1(graph, targets)
    index = TargetSubgraphIndex(removed, targets, EmptyInstanceTriangle())
    reference = TargetSubgraphIndex(
        removed, targets, EmptyInstanceTriangle(), assembly="python"
    )
    assert fingerprint(index) == fingerprint(reference)
    state = index.new_state()
    set_state = index.new_set_state()
    for target in targets:
        assert state.gains_for_target(target) == {
            edge: set_state.gain_for_target(edge, target)
            for edge in set_state.candidate_edges()
            if set_state.gain_for_target(edge, target) > 0
        }
    for edge in state.candidate_edge_list():
        assert state.delete_edge(edge) == set_state.delete_edge(edge)
        assert state.total_similarity() == set_state.total_similarity()
    # the empty instances are exactly the unbreakable remainder
    assert state.total_similarity() == sum(
        1 for _ in targets
    )


def test_custom_tuple_motif_parallel_build_matches_serial():
    for seed in (1, 5, 9):
        graph, targets = random_instance(seed)
        if graph is None:
            continue
        removed = phase1(graph, targets)
        serial = TargetSubgraphIndex(removed, targets, TupleOnlyRectangle())
        parallel = TargetSubgraphIndex(
            removed, targets, TupleOnlyRectangle(), build_workers=2
        )
        assert fingerprint(parallel) == fingerprint(serial)
        # and the fallback agrees with the built-in CSR enumeration
        builtin = TargetSubgraphIndex(removed, targets, "rectangle")
        assert serial.number_of_instances() == builtin.number_of_instances()
        assert serial.candidate_edge_list() == builtin.candidate_edge_list()
