"""Property tests for the budget divisions (TBD/DBD/uniform).

The paper's MLBT algorithms receive their per-target sub budgets from a
budget division; a division that strands budget despite available headroom
silently weakens every TBD/DBD experiment.  These tests pin the allocation
invariant

    sum_t k_t == min(budget, sum_t |W_t|)    and    k_t <= |W_t|

across random cap/weight profiles, including the historical stranding repro
(the redistribution loop used to give up after a fixed number of passes).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import (
    BudgetUnderAllocationWarning,
    _proportional_allocation,
    make_budget_division,
    validate_budget_division,
)
from repro.core.model import TPPProblem
from repro.graphs.graph import Graph

profiles = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.integers(min_value=0, max_value=40),
    ),
    min_size=1,
    max_size=25,
)


@given(profiles, st.integers(min_value=0, max_value=400))
@settings(max_examples=200, deadline=None)
def test_allocation_exhausts_budget_or_headroom(profile, budget):
    """Every unit is allocated unless every target is saturated."""
    weights = {("t", i): weight for i, (weight, _) in enumerate(profile)}
    caps = {("t", i): cap for i, (_, cap) in enumerate(profile)}
    allocation = _proportional_allocation(weights, caps, budget)
    assert set(allocation) == set(weights)
    for target, value in allocation.items():
        assert 0 <= value <= caps[target]
    if sum(weights.values()) > 0:
        assert sum(allocation.values()) == min(budget, sum(caps.values()))
    else:
        assert sum(allocation.values()) == 0


def test_stranding_repro_one_target_with_headroom():
    """50 targets capped at 1 plus one target with headroom 1000: a budget of
    500 must be fully spent (the old pass-bounded loop allocated only 66)."""
    weights = {("t", i): 1.0 for i in range(50)}
    caps = {("t", i): 1 for i in range(50)}
    weights[("big", 0)] = 1.0
    caps[("big", 0)] = 1000
    allocation = _proportional_allocation(weights, caps, 500)
    assert sum(allocation.values()) == 500
    assert allocation[("big", 0)] == 450
    assert all(allocation[("t", i)] == 1 for i in range(50))


def test_uniform_weights_distribute_evenly_before_caps():
    weights = {i: 1.0 for i in range(4)}
    caps = {i: 10 for i in range(4)}
    allocation = _proportional_allocation(weights, caps, 8)
    assert all(value == 2 for value in allocation.values())


@pytest.fixture
def problem():
    # target (0,1) has 3 triangles, target (2,3) has 1, target (0,9) has 0
    graph = Graph(
        edges=[
            (0, 1),
            (2, 3),
            (0, 9),
            (0, 4),
            (1, 4),
            (0, 5),
            (1, 5),
            (0, 6),
            (1, 6),
            (2, 7),
            (3, 7),
        ]
    )
    return TPPProblem(graph, [(0, 1), (2, 3), (0, 9)], motif="triangle")


@pytest.mark.parametrize("strategy", ["tbd", "dbd", "uniform"])
def test_strategies_always_allocate_min_of_budget_and_headroom(problem, strategy):
    caps = problem.initial_similarity_by_target()
    for budget in range(0, 8):
        division = make_budget_division(problem, budget, strategy)
        assert sum(division.values()) == min(budget, sum(caps.values()))
        for target, value in division.items():
            assert 0 <= value <= caps[target]


def test_validate_warns_on_underallocation_with_headroom(problem):
    problem.build_index()
    # one unit for a 4-subgraph problem under budget 3: 2 units stranded
    with pytest.warns(BudgetUnderAllocationWarning):
        validate_budget_division(problem, 3, {(0, 1): 1})


def test_validate_silent_when_budget_or_headroom_exhausted(problem):
    import warnings

    problem.build_index()
    with warnings.catch_warnings():
        warnings.simplefilter("error", BudgetUnderAllocationWarning)
        # full budget spent
        validate_budget_division(problem, 2, {(0, 1): 1, (2, 3): 1})
        # all headroom consumed (|W| = 4 < budget)
        validate_budget_division(problem, 10, {(0, 1): 3, (2, 3): 1})


def test_validate_headroom_check_never_builds_the_index(problem):
    import warnings

    # the check must piggyback on an already-built index only: validating a
    # division on a fresh problem (e.g. for the naive recount baseline,
    # whose cost profile must stay enumeration-free) stays silent and cheap
    with warnings.catch_warnings():
        warnings.simplefilter("error", BudgetUnderAllocationWarning)
        validate_budget_division(problem, 3, {(0, 1): 1})
    assert not problem.has_cached_index
