"""Property tests: delta application is bit-identical to a fresh rebuild.

``apply_delta`` splices edge insertions/deletions into a built
:class:`~repro.motifs.enumeration.TargetSubgraphIndex` by touching only the
motif instances incident to the changed edges.  These tests drive randomized
insert/delete sequences — edges inside and outside motif instances, edges
incident to target endpoints, brand-new nodes, insert-then-delete round
trips — through every built-in motif plus a custom tuple-only motif and a
zero-arity motif, and assert the spliced index equals a
``TargetSubgraphIndex`` built from scratch on the updated graph **by
bytes**: all flat arrays, the per-target ranges, the candidate order, and
the underlying graph's CSR.  The greedy engines (kernel and recount) then
must produce identical traces on the spliced and the rebuilt session.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import TPPProblem
from repro.exceptions import DeltaError
from repro.graphs.graph import Graph, canonical_edge
from repro.motifs.base import MotifPattern
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS, TargetSubgraphIndex
from repro.motifs.updates import EdgeDelta
from repro.service import ProtectionRequest, ProtectionService

MOTIFS = ("triangle", "rectangle", "rectri", "path4", "clique4")

GREEDY_METHODS = ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD")


def fingerprint(index):
    arrays = tuple(getattr(index, name).tobytes() for name in INDEX_ARRAY_FIELDS)
    return arrays + (index._target_ranges, index._candidate_ids)


def graph_fingerprint(indexed):
    return (
        indexed.nodes,
        bytes(indexed._indptr),
        bytes(indexed._neighbors),
        bytes(indexed._incident_edges),
        indexed._endpoint_id_pairs().tobytes(),
    )


def random_instance(seed, max_nodes=16):
    """Return ``(graph, targets)`` with the targets still present as edges."""
    rng = random.Random(seed)
    n = rng.randint(6, max_nodes)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < rng.uniform(0.25, 0.5):
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if len(edges) < 4:
        return None, None
    targets = rng.sample(edges, rng.randint(1, min(4, len(edges) - 2)))
    return graph, [canonical_edge(*target) for target in targets]


def random_operations(phase1, targets, rng, max_ops=8, new_nodes=True):
    """An ordered, valid insert/delete sequence against ``phase1``.

    Tracks the live edge set while generating so later operations may touch
    earlier ones (insert an edge, then delete it again).  Deliberately mixes
    edges far from any target with edges incident to target endpoints — the
    radius-ball pruning must never skip a target that gains instances.
    """
    target_set = {canonical_edge(*target) for target in targets}
    live = {canonical_edge(*edge) for edge in phase1.edges()}
    nodes = sorted(phase1.nodes())
    fresh = [max(nodes) + 1 + i for i in range(2)] if new_nodes else []
    target_nodes = sorted({x for target in targets for x in target})
    ops = []
    for _ in range(rng.randint(1, max_ops)):
        if live and rng.random() < 0.45:
            edge = rng.choice(sorted(live))
            ops.append(("delete", edge))
            live.discard(edge)
            continue
        pool = nodes + fresh if rng.random() < 0.3 else nodes
        # half the inserts aim at a target endpoint to stress re-enumeration
        if target_nodes and rng.random() < 0.5:
            u = rng.choice(target_nodes)
        else:
            u = rng.choice(pool)
        v = rng.choice(pool)
        edge = canonical_edge(u, v)
        if u == v or edge in target_set or edge in live:
            continue
        ops.append(("insert", edge))
        live.add(edge)
    return ops


def updated_phase1(phase1, ops):
    """Replay the *net* effect of ``ops`` on a copy of ``phase1``.

    A naive op-by-op replay diverges from delta semantics in one corner: an
    edge to a brand-new node that is inserted and deleted again inside one
    batch leaves an isolated node behind in a ``Graph`` replay, while the
    delta (documented as a net no-op) never materialises the node at all.
    """
    live = {canonical_edge(*edge) for edge in phase1.edges()}
    overlay = {}
    for op, edge in ops:
        overlay[edge] = op == "insert"
    updated = phase1.copy()
    for edge, present in overlay.items():
        if present and edge not in live:
            updated.add_edge(*edge)
        elif not present and edge in live:
            updated.remove_edge(*edge)
    return updated


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=len(MOTIFS) - 1),
)
@settings(max_examples=60, deadline=None)
def test_random_delta_converges_to_fresh_build(seed, motif_index):
    graph, targets = random_instance(seed)
    if graph is None:
        return
    motif = MOTIFS[motif_index]
    phase1 = graph.without_edges(targets)
    index = TargetSubgraphIndex(phase1, targets, motif)
    rng = random.Random(seed * 31 + motif_index)
    ops = random_operations(phase1, targets, rng)
    if not ops:
        return
    outcome = index.apply_delta(EdgeDelta(tuple(ops)))
    rebuilt = TargetSubgraphIndex(updated_phase1(phase1, ops), targets, motif)
    assert fingerprint(outcome.index) == fingerprint(rebuilt), (seed, motif, ops)
    assert graph_fingerprint(outcome.index.indexed_graph) == graph_fingerprint(
        rebuilt.indexed_graph
    ), (seed, motif, ops)
    # the old index is untouched (copy-on-write)
    assert fingerprint(index) == fingerprint(
        TargetSubgraphIndex(phase1, targets, motif)
    )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_insert_then_delete_round_trips_to_the_original(seed):
    graph, targets = random_instance(seed)
    if graph is None:
        return
    motif = MOTIFS[seed % len(MOTIFS)]
    phase1 = graph.without_edges(targets)
    index = TargetSubgraphIndex(phase1, targets, motif)
    rng = random.Random(seed)
    target_set = {canonical_edge(*target) for target in targets}
    live = {canonical_edge(*edge) for edge in phase1.edges()}
    nodes = sorted(phase1.nodes())
    inserts = []
    for _ in range(6):
        u, v = rng.sample(nodes, 2)
        edge = canonical_edge(u, v)
        if edge not in target_set and edge not in live:
            live.add(edge)
            inserts.append(edge)
    if not inserts:
        return
    forward = index.apply_delta(EdgeDelta.inserting(*inserts)).index
    back = forward.apply_delta(EdgeDelta.deleting(*inserts)).index
    assert fingerprint(back) == fingerprint(index)
    assert graph_fingerprint(back.indexed_graph) == graph_fingerprint(
        index.indexed_graph
    )
    # one batch that inserts and deletes the same edges is a net no-op and
    # hands back the very same index object
    ops = tuple(("insert", edge) for edge in inserts) + tuple(
        ("delete", edge) for edge in inserts
    )
    outcome = index.apply_delta(EdgeDelta(ops))
    assert outcome.index is index
    assert outcome.edges_inserted == 0 and outcome.edges_deleted == 0


def test_pure_deletions_never_reenumerate():
    graph, targets = random_instance(11)
    phase1 = graph.without_edges(targets)
    index = TargetSubgraphIndex(phase1, targets, "rectangle")
    target_set = {canonical_edge(*target) for target in targets}
    victims = [
        canonical_edge(*edge)
        for edge in sorted(phase1.edges())
        if canonical_edge(*edge) not in target_set
    ][:3]
    outcome = index.apply_delta(EdgeDelta.deleting(*victims))
    assert outcome.targets_reenumerated == 0
    rebuilt = TargetSubgraphIndex(
        updated_phase1(phase1, [("delete", v) for v in victims]), targets, "rectangle"
    )
    assert fingerprint(outcome.index) == fingerprint(rebuilt)


def test_inserting_a_target_link_is_refused():
    graph, targets = random_instance(3)
    phase1 = graph.without_edges(targets)
    index = TargetSubgraphIndex(phase1, targets, "triangle")
    try:
        index.apply_delta(EdgeDelta.inserting(targets[0]))
    except DeltaError:
        pass
    else:
        raise AssertionError("inserting a protected target link must raise")


class TupleOnlyRectangle(MotifPattern):
    """No id-space override: the delta path must route re-enumeration through
    the same tuple fallback (and canonical ordering) as a fresh build."""

    name = "tuple-only-rectangle"

    def enumerate_instances(self, graph, target):
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        neighbors_v = graph.neighbors(v)
        for a in graph.neighbors(u):
            if a == v or a == u:
                continue
            for b in graph.neighbors(a):
                if b == u or b == v or b == a:
                    continue
                if b in neighbors_v:
                    yield frozenset(
                        (
                            self._canonical(u, a),
                            self._canonical(a, b),
                            self._canonical(b, v),
                        )
                    )


class EmptyInstanceTriangle(MotifPattern):
    """Yields triangle instances plus one pathological zero-arity instance."""

    name = "empty-instance-triangle"

    def enumerate_instances(self, graph, target):
        u, v = target
        if not (graph.has_node(u) and graph.has_node(v)):
            return
        yield frozenset()  # an instance with no protector edges
        for w in graph.common_neighbors(u, v):
            yield frozenset((self._canonical(u, w), self._canonical(w, v)))


def test_custom_tuple_motif_delta_matches_rebuild():
    checked = 0
    for seed in range(24):
        graph, targets = random_instance(seed)
        if graph is None:
            continue
        phase1 = graph.without_edges(targets)
        index = TargetSubgraphIndex(phase1, targets, TupleOnlyRectangle())
        rng = random.Random(seed + 99)
        ops = random_operations(phase1, targets, rng, max_ops=5)
        if not ops:
            continue
        outcome = index.apply_delta(EdgeDelta(tuple(ops)))
        rebuilt = TargetSubgraphIndex(
            updated_phase1(phase1, ops), targets, TupleOnlyRectangle()
        )
        assert fingerprint(outcome.index) == fingerprint(rebuilt), (seed, ops)
        checked += 1
        if checked >= 6:
            break
    assert checked >= 3, "not enough non-trivial random instances"


def test_zero_arity_motif_delta_matches_rebuild():
    """Zero-arity instances survive both the destroy splice (they can never
    be destroyed: no memberships) and the re-enumeration merge."""
    for seed in (7, 13):
        graph, targets = random_instance(seed)
        phase1 = graph.without_edges(targets)
        index = TargetSubgraphIndex(phase1, targets, EmptyInstanceTriangle())
        rng = random.Random(seed)
        ops = random_operations(phase1, targets, rng, max_ops=6)
        if not ops:
            continue
        outcome = index.apply_delta(EdgeDelta(tuple(ops)))
        rebuilt = TargetSubgraphIndex(
            updated_phase1(phase1, ops), targets, EmptyInstanceTriangle()
        )
        assert fingerprint(outcome.index) == fingerprint(rebuilt), (seed, ops)


def test_greedy_traces_agree_after_delta_for_both_engines():
    """Kernel *and* recount engines answer identically on a delta-updated
    problem and a problem built from scratch on the updated graph."""
    checked = 0
    for seed in range(20):
        graph, targets = random_instance(seed)
        if graph is None:
            continue
        motif = MOTIFS[seed % len(MOTIFS)]
        problem = TPPProblem(graph, targets, motif=motif)
        index = problem.build_index()
        rng = random.Random(seed * 7 + 1)
        ops = random_operations(problem.phase1_graph, targets, rng, new_nodes=False)
        if not ops:
            continue
        applied_problem, outcome = problem.apply_delta(EdgeDelta(tuple(ops)))
        if outcome.index.number_of_instances() == 0:
            continue
        updated_graph = updated_phase1(problem.phase1_graph, ops)
        updated_graph.add_edges_from(targets)
        rebuilt_problem = TPPProblem(
            updated_graph, targets, motif=motif, constant=applied_problem.constant
        )
        applied_service = ProtectionService(applied_problem)
        rebuilt_service = ProtectionService(rebuilt_problem)
        budget = max(1, outcome.index.number_of_instances() // 2)
        for method in GREEDY_METHODS:
            for engine in ("coverage", "recount"):
                lhs = applied_service.solve(
                    ProtectionRequest(method, budget, engine=engine)
                )
                rhs = rebuilt_service.solve(
                    ProtectionRequest(method, budget, engine=engine)
                )
                assert (lhs.protectors, lhs.similarity_trace) == (
                    rhs.protectors,
                    rhs.similarity_trace,
                ), (seed, motif, method, engine)
        checked += 1
        if checked >= 4:
            break
    assert checked >= 2, "not enough non-trivial random instances"


def test_counter_matrix_rebuilt_from_spliced_arrays():
    """The pristine per-(edge, target) counters of a spliced index equal the
    rebuilt index's — CoverageState starts from identical state."""
    graph, targets = random_instance(5)
    phase1 = graph.without_edges(targets)
    index = TargetSubgraphIndex(phase1, targets, "triangle")
    rng = random.Random(5)
    ops = random_operations(phase1, targets, rng)
    outcome = index.apply_delta(EdgeDelta(tuple(ops)))
    rebuilt = TargetSubgraphIndex(updated_phase1(phase1, ops), targets, "triangle")
    assert np.array_equal(outcome.index._et_initial_count, rebuilt._et_initial_count)
    lhs, rhs = outcome.index.new_state(), rebuilt.new_state()
    assert lhs.total_similarity() == rhs.total_similarity()
    assert lhs.candidate_edge_list() == rhs.candidate_edge_list()
