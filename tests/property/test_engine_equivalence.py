"""Property-based equivalence of the coverage and recount engines.

The scalable (-R) algorithms are only a valid optimisation if the coverage
index answers every marginal-gain query exactly like a fresh recount of the
graph.  These tests exercise that equivalence on random graphs, random
targets and random deletion prefixes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engines import CoverageEngine, RecountEngine
from repro.core.model import TPPProblem
from repro.graphs.graph import Graph


def build_problem(seed: int, motif_index: int):
    rng = random.Random(seed)
    n = rng.randint(6, 13)
    p = rng.uniform(0.2, 0.5)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    edges = sorted(graph.edges())
    if len(edges) < 3:
        return None
    rng.shuffle(edges)
    targets = edges[: rng.randint(1, 3)]
    motif = ("triangle", "rectangle", "rectri")[motif_index % 3]
    return TPPProblem(graph, targets, motif=motif)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_initial_gains_identical(seed, motif_index):
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    coverage = CoverageEngine(problem)
    recount = RecountEngine(problem)
    assert coverage.total_similarity() == recount.total_similarity()
    for edge in problem.phase1_graph.edges():
        assert coverage.total_gain(edge) == recount.total_gain(edge)
        assert coverage.gain_by_target(edge) == recount.gain_by_target(edge)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_gains_identical_after_random_deletions(seed, motif_index, deletions):
    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    rng = random.Random(seed + 99)
    coverage = CoverageEngine(problem)
    recount = RecountEngine(problem)
    edges = sorted(problem.phase1_graph.edges())
    rng.shuffle(edges)
    for edge in edges[: min(deletions, len(edges))]:
        assert coverage.commit(edge) == recount.commit(edge)
    assert coverage.total_similarity() == recount.total_similarity()
    for edge in edges[deletions : deletions + 10]:
        assert coverage.total_gain(edge) == recount.total_gain(edge)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
@settings(max_examples=25, deadline=None)
def test_greedy_results_equivalent_across_engines(seed, motif_index):
    """SGB-Greedy reaches the same similarity curve with either engine."""
    from repro.core.sgb import sgb_greedy

    problem = build_problem(seed, motif_index)
    if problem is None:
        return
    budget = min(5, problem.initial_similarity())
    coverage = sgb_greedy(problem, budget, engine="coverage")
    recount = sgb_greedy(problem, budget, engine="recount")
    assert coverage.similarity_trace == recount.similarity_trace
