"""Tests for the runtime (Figs. 5-6) and utility-loss (Tables III-V) experiments."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runtime import run_runtime_comparison
from repro.experiments.utility_loss import run_utility_loss


@pytest.fixture
def tiny_config():
    return ExperimentConfig(
        dataset="small-social",
        motifs=("triangle",),
        num_targets=4,
        repetitions=1,
        methods=("SGB-Greedy", "RD"),
        seed=0,
    )


class TestRuntimeComparison:
    def test_curves_for_both_engines(self, tiny_config):
        result = run_runtime_comparison(
            tiny_config, "triangle", budgets=[1, 2], engines=("coverage", "recount")
        )
        assert "SGB-Greedy-R" in result.curves
        assert "SGB-Greedy" in result.curves
        assert "RD" in result.curves
        assert len(result.curves["SGB-Greedy-R"]) == 2

    def test_times_are_nonnegative(self, tiny_config):
        result = run_runtime_comparison(
            tiny_config, "triangle", budgets=[1, 3], engines=("coverage",)
        )
        for values in result.curves.values():
            assert all(value >= 0.0 for value in values)

    def test_speedup_helper(self, tiny_config):
        result = run_runtime_comparison(
            tiny_config, "triangle", budgets=[2], engines=("coverage", "recount")
        )
        speedups = result.speedup("SGB-Greedy", "SGB-Greedy-R")
        assert len(speedups) == 1
        assert speedups[0] > 0

    def test_baselines_only_timed_once(self, tiny_config):
        result = run_runtime_comparison(
            tiny_config, "triangle", budgets=[1], engines=("coverage", "recount")
        )
        # RD appears once (no -R variant)
        assert "RD" in result.curves
        assert "RD-R" not in result.curves

    def test_division_labels(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle",),
            num_targets=4,
            repetitions=1,
            methods=("CT-Greedy:TBD",),
            seed=0,
        )
        result = run_runtime_comparison(
            config, "triangle", budgets=[1], engines=("coverage",)
        )
        assert "CT-Greedy-R:TBD" in result.curves


class TestUtilityLoss:
    def test_table_shape(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle", "rectri"),
            num_targets=4,
            repetitions=1,
            methods=("SGB-Greedy", "CT-Greedy:TBD"),
            seed=0,
        )
        table = run_utility_loss(config, metrics=("clust", "cn"))
        assert set(table.values) == {"triangle", "rectri"}
        assert set(table.methods()) == {"SGB-Greedy", "CT-Greedy:TBD"}
        rows = table.as_rows()
        assert len(rows) == 2

    def test_losses_are_percentages(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle",),
            num_targets=3,
            repetitions=1,
            methods=("SGB-Greedy",),
            seed=1,
        )
        table = run_utility_loss(config, metrics=("clust", "cn"))
        for per_method in table.values.values():
            for value in per_method.values():
                assert 0.0 <= value <= 100.0

    def test_full_protection_budget_recorded(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle",),
            num_targets=3,
            repetitions=1,
            methods=("SGB-Greedy",),
            seed=1,
        )
        table = run_utility_loss(config, budget=None, metrics=("clust",))
        assert table.budgets_used["triangle"]["SGB-Greedy"] > 0

    def test_fixed_budget_mode(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle",),
            num_targets=3,
            repetitions=1,
            methods=("SGB-Greedy",),
            seed=1,
        )
        table = run_utility_loss(config, budget=2, metrics=("clust",))
        assert table.budgets_used["triangle"]["SGB-Greedy"] <= 2

    def test_phase1_only_loss_not_larger_than_protected(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle",),
            num_targets=4,
            repetitions=1,
            methods=("SGB-Greedy",),
            seed=2,
        )
        table = run_utility_loss(config, metrics=("clust", "cn"))
        # protecting deletes strictly more edges than only removing targets
        assert table.phase1_only["triangle"] <= table.values["triangle"]["SGB-Greedy"] + 1e-9
