"""Tests for the method registry and experiment configuration."""

import pytest

from repro.core.model import TPPProblem
from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig, paper_profile, quick_profile
from repro.experiments.methods import (
    ALL_METHODS,
    BASELINE_METHODS,
    GREEDY_METHODS,
    is_greedy_method,
    run_method,
)


@pytest.fixture
def problem():
    graph = small_social_graph(seed=1)
    targets = sample_random_targets(graph, 5, seed=0)
    return TPPProblem(graph, targets, motif="triangle")


class TestMethodRegistry:
    def test_all_methods_listed(self):
        assert set(ALL_METHODS) == set(GREEDY_METHODS) | set(BASELINE_METHODS)

    def test_is_greedy_method(self):
        assert is_greedy_method("SGB-Greedy")
        assert not is_greedy_method("RD")

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_runs(self, problem, method):
        result = run_method(method, problem, budget=3, engine="coverage", seed=0)
        assert result.budget_used <= 3
        assert result.final_similarity <= result.initial_similarity

    def test_unknown_method(self, problem):
        with pytest.raises(ExperimentError):
            run_method("Oracle", problem, budget=1)

    def test_greedy_methods_beat_rd_on_average(self, problem):
        budget = 5
        rd_mean = sum(
            run_method("RD", problem, budget, seed=s).final_similarity for s in range(5)
        ) / 5
        sgb = run_method("SGB-Greedy", problem, budget).final_similarity
        assert sgb <= rd_mean


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.dataset == "arenas-email"
        assert config.motifs == ("triangle", "rectangle", "rectri")

    def test_invalid_values_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(num_targets=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(repetitions=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(engine="quantum")
        with pytest.raises(ExperimentError):
            ExperimentConfig(methods=("SGB-Greedy", "Oracle"))

    def test_dataset_options(self):
        config = ExperimentConfig(dataset_kwargs=(("nodes", 100),))
        assert config.dataset_options() == {"nodes": 100}

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(num_targets=7)
        assert config.num_targets == 7

    def test_profiles(self):
        quick = quick_profile()
        paper = paper_profile()
        assert quick.repetitions < paper.repetitions
        assert dict(quick.dataset_kwargs)["nodes"] < 1133
        assert paper.num_targets == 20

    def test_profile_overrides(self):
        config = quick_profile(num_targets=3)
        assert config.num_targets == 3
