"""Tests for reporting helpers and the per-figure runners."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    format_runtime_comparison,
    format_similarity_evolution,
    format_table,
    format_utility_loss_table,
    results_to_json,
    save_json,
)
from repro.experiments.runner import run_figure3, run_table5
from repro.experiments.runtime import run_runtime_comparison
from repro.experiments.similarity_evolution import run_similarity_evolution
from repro.experiments.utility_loss import run_utility_loss


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        dataset="small-social",
        motifs=("triangle",),
        num_targets=4,
        repetitions=1,
        methods=("SGB-Greedy", "RD"),
        budgets=(1, 2, 3),
        seed=0,
    )


@pytest.fixture(scope="module")
def evolution(tiny_config):
    return run_similarity_evolution(tiny_config, "triangle")


@pytest.fixture(scope="module")
def runtime(tiny_config):
    return run_runtime_comparison(
        tiny_config, "triangle", budgets=[1, 2], engines=("coverage",)
    )


@pytest.fixture(scope="module")
def utility(tiny_config):
    return run_utility_loss(tiny_config, metrics=("clust", "cn"))


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 3.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_similarity_evolution(self, evolution):
        text = format_similarity_evolution(evolution)
        assert "SGB-Greedy" in text
        assert "triangle" in text

    def test_format_runtime(self, runtime):
        text = format_runtime_comparison(runtime)
        assert "Running time" in text
        assert "SGB-Greedy-R" in text

    def test_format_utility_loss(self, utility):
        text = format_utility_loss_table(utility)
        assert "utility loss" in text
        assert "triangle" in text


class TestJsonSerialisation:
    def test_round_trip_each_kind(self, evolution, runtime, utility, tmp_path):
        for result in (evolution, runtime, utility):
            payload = results_to_json(result)
            assert json.dumps(payload)  # serialisable
        path = save_json([evolution, runtime], tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list) and len(loaded) == 2

    def test_single_result_saved_as_object(self, utility, tmp_path):
        path = save_json(utility, tmp_path / "single.json")
        loaded = json.loads(path.read_text())
        assert loaded["kind"] == "utility_loss"

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            results_to_json("not a result")


class TestRunners:
    def test_run_figure3_quick_single_motif(self):
        results = run_figure3(scale="quick", motifs=("triangle",))
        assert len(results) == 1
        evolution = results[0]
        assert evolution.motif == "triangle"
        # SGB must reach full protection at the end of the sweep
        assert evolution.curves["SGB-Greedy"][-1] == 0.0

    def test_run_table5_quick(self):
        table = run_table5(scale="quick")
        assert set(table.metrics) == {"clust", "cn"}
        assert table.values  # one row per motif

    def test_invalid_scale(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            run_figure3(scale="huge")
