"""Tests for the Fig. 3 / Fig. 4 similarity-evolution experiment."""

import pytest

from repro.core.model import TPPProblem
from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.experiments.config import ExperimentConfig
from repro.experiments.similarity_evolution import (
    evolution_for_problem,
    run_similarity_evolution,
)

METHODS = ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD", "RD", "RDT")


@pytest.fixture
def config():
    return ExperimentConfig(
        dataset="small-social",
        motifs=("triangle",),
        num_targets=5,
        repetitions=2,
        methods=METHODS,
        budgets=(1, 3, 5, 8),
        seed=0,
    )


class TestEvolutionForProblem:
    def test_curves_cover_all_methods_and_budgets(self):
        graph = small_social_graph(seed=2)
        targets = sample_random_targets(graph, 5, seed=1)
        problem = TPPProblem(graph, targets, motif="triangle")
        budgets = [1, 2, 4]
        curves = evolution_for_problem(problem, budgets, METHODS, seed=1)
        assert set(curves) == set(METHODS)
        assert all(len(values) == len(budgets) for values in curves.values())

    def test_curves_nonincreasing_in_budget(self):
        graph = small_social_graph(seed=2)
        targets = sample_random_targets(graph, 5, seed=1)
        problem = TPPProblem(graph, targets, motif="triangle")
        curves = evolution_for_problem(problem, [1, 2, 4, 8], METHODS, seed=1)
        for method in ("SGB-Greedy", "RD", "RDT"):
            values = curves[method]
            assert all(a >= b for a, b in zip(values, values[1:]))

    def test_sgb_dominates_baselines(self):
        graph = small_social_graph(seed=2)
        targets = sample_random_targets(graph, 5, seed=1)
        problem = TPPProblem(graph, targets, motif="triangle")
        curves = evolution_for_problem(problem, [2, 5], METHODS, seed=1)
        for index in range(2):
            assert curves["SGB-Greedy"][index] <= curves["RD"][index]


class TestRunSimilarityEvolution:
    def test_result_shape(self, config):
        result = run_similarity_evolution(config, "triangle")
        assert result.motif == "triangle"
        assert result.budgets == (1, 3, 5, 8)
        assert set(result.curves) == set(METHODS)
        assert result.initial_similarity > 0

    def test_rows_align_with_budgets(self, config):
        result = run_similarity_evolution(config, "triangle")
        rows = result.as_rows()
        assert len(rows) == len(result.budgets)
        assert rows[0][0] == 1

    def test_automatic_budget_axis_reaches_zero(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle",),
            num_targets=4,
            repetitions=1,
            methods=("SGB-Greedy", "RDT"),
            budgets=None,
            seed=3,
        )
        result = run_similarity_evolution(config, "triangle")
        assert result.curves["SGB-Greedy"][-1] == 0.0
        assert "SGB-Greedy" in result.critical_budget

    def test_explicit_graph_reused(self, config):
        graph = small_social_graph(seed=9)
        result = run_similarity_evolution(config, "triangle", graph=graph)
        assert set(result.curves) == set(METHODS)

    def test_paper_ordering_shape(self, config):
        """SGB <= CT <= WT <= RD at the largest budget (averaged)."""
        result = run_similarity_evolution(config, "triangle")
        final = {method: values[-1] for method, values in result.curves.items()}
        assert final["SGB-Greedy"] <= final["CT-Greedy:TBD"] + 1e-9
        assert final["CT-Greedy:TBD"] <= final["RD"] + 1e-9
