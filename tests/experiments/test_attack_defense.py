"""Tests for the attack-defense extension experiment."""

import pytest

from repro.experiments.attack_defense import (
    DEFAULT_PREDICTORS,
    run_attack_defense,
)
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        dataset="small-social",
        motifs=("triangle",),
        num_targets=4,
        repetitions=2,
        methods=("SGB-Greedy",),
        seed=0,
    )
    return run_attack_defense(config, motif="triangle", negative_samples=60)


class TestAttackDefense:
    def test_all_default_predictors_evaluated(self, result):
        assert set(result.predictors()) == set(DEFAULT_PREDICTORS)

    def test_triangle_family_fully_defended(self, result):
        for name in ("common_neighbors", "jaccard", "adamic_adar", "resource_allocation"):
            assert result.exposed_after[name] == 0.0

    def test_protection_never_increases_exposure(self, result):
        for name in result.predictors():
            assert result.exposed_after[name] <= result.exposed_before[name]

    def test_auc_values_in_range(self, result):
        for mapping in (result.auc_before, result.auc_after):
            for value in mapping.values():
                assert 0.0 <= value <= 1.0

    def test_rows_shape(self, result):
        rows = result.as_rows()
        assert len(rows) == len(DEFAULT_PREDICTORS)
        assert all(len(row) == 5 for row in rows)

    def test_budget_used_positive(self, result):
        assert result.budget_used >= 0.0

    def test_custom_predictor_subset(self):
        config = ExperimentConfig(
            dataset="small-social",
            motifs=("triangle",),
            num_targets=3,
            repetitions=1,
            methods=("SGB-Greedy",),
            seed=1,
        )
        outcome = run_attack_defense(
            config, motif="triangle", predictors=("jaccard",), negative_samples=30
        )
        assert outcome.predictors() == ("jaccard",)
