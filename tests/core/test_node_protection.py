"""Tests for the node-level TPP extension."""

import pytest

from repro.core.node_protection import node_targets, protect_target_nodes
from repro.datasets.synthetic import small_social_graph
from repro.exceptions import InvalidTargetError
from repro.graphs.graph import Graph


@pytest.fixture
def graph():
    return small_social_graph(seed=8)


class TestNodeTargets:
    def test_incident_links_collected(self, graph):
        node = next(iter(graph.nodes()))
        targets = node_targets(graph, [node])
        assert len(targets) == graph.degree(node)
        assert all(node in edge for edge in targets)

    def test_shared_link_not_duplicated(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        targets = node_targets(graph, [0, 1])
        assert len(targets) == len(set(targets)) == 3

    def test_missing_node_rejected(self, graph):
        with pytest.raises(InvalidTargetError):
            node_targets(graph, ["ghost"])

    def test_isolated_node_rejected(self):
        graph = Graph(edges=[(0, 1)], nodes=[5])
        with pytest.raises(InvalidTargetError):
            node_targets(graph, [5])


class TestProtectTargetNodes:
    def test_full_protection_of_one_node(self, graph):
        node = min(graph.nodes(), key=lambda n: (graph.degree(n), str(n)))
        result = protect_target_nodes(graph, [node], budget=200, algorithm="sgb")
        assert result.fully_protected
        assert result.exposure_by_node() == {node: 0}
        released = result.released_graph()
        # every incident link and every protector is gone
        assert released.degree(node) == 0 or all(
            not released.has_edge(node, x) for x in graph.neighbors(node)
        )

    def test_limited_budget_reports_exposure(self, graph):
        node = max(graph.nodes(), key=lambda n: (graph.degree(n), str(n)))
        result = protect_target_nodes(graph, [node], budget=1, algorithm="sgb")
        exposure = result.exposure_by_node()
        assert node in exposure
        assert exposure[node] >= 0
        assert "node-TPP" in result.summary()

    @pytest.mark.parametrize("algorithm", ["sgb", "ct", "wt"])
    def test_all_algorithms_supported(self, graph, algorithm):
        node = min(graph.nodes(), key=lambda n: (graph.degree(n), str(n)))
        result = protect_target_nodes(graph, [node], budget=50, algorithm=algorithm)
        assert result.link_result.budget_used <= 50

    def test_unknown_algorithm(self, graph):
        node = next(iter(graph.nodes()))
        with pytest.raises(InvalidTargetError):
            protect_target_nodes(graph, [node], budget=3, algorithm="oracle")

    def test_multiple_nodes(self, graph):
        nodes = sorted(graph.nodes(), key=lambda n: (graph.degree(n), str(n)))[:2]
        result = protect_target_nodes(graph, nodes, budget=300, algorithm="sgb")
        assert set(result.exposure_by_node()) == set(nodes)
        assert result.fully_protected
