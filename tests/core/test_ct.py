"""Tests for the CT-Greedy algorithm (Algorithm 2)."""

import pytest

from repro.core.budget import make_budget_division
from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.verification import verify_result
from repro.exceptions import BudgetError
from repro.graphs.graph import Graph


@pytest.fixture
def problem():
    graph = Graph(
        edges=[
            (0, 1),
            (2, 3),
            (0, 4),
            (1, 4),
            (0, 5),
            (1, 5),
            (2, 6),
            (3, 6),
            (2, 7),
            (3, 7),
        ]
    )
    return TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")


class TestCTGreedy:
    @pytest.mark.parametrize("division", ["tbd", "dbd", "uniform"])
    def test_respects_sub_budgets(self, problem, division):
        result = ct_greedy(problem, budget=3, budget_division=division)
        assert result.budget_division is not None
        assert result.allocation is not None
        for target, protectors in result.allocation.items():
            assert len(protectors) <= result.budget_division[target]

    def test_total_budget_respected(self, problem):
        result = ct_greedy(problem, budget=2, budget_division="tbd")
        assert result.budget_used <= 2

    def test_full_protection_with_tbd_and_enough_budget(self, problem):
        result = ct_greedy(problem, budget=10, budget_division="tbd")
        assert result.fully_protected
        assert verify_result(problem, result)

    def test_explicit_division(self, problem):
        division = {(0, 1): 1, (2, 3): 1}
        result = ct_greedy(problem, budget=2, budget_division=division)
        assert result.budget_used == 2
        assert len(result.allocation[(0, 1)]) == 1
        assert len(result.allocation[(2, 3)]) == 1

    def test_zero_budget(self, problem):
        result = ct_greedy(problem, budget=0)
        assert result.protectors == ()

    def test_negative_budget_rejected(self, problem):
        with pytest.raises(BudgetError):
            ct_greedy(problem, budget=-2)

    def test_never_better_than_sgb(self, problem):
        # SGB optimises globally; CT is constrained by the partition matroid
        for budget in range(1, 5):
            sgb = sgb_greedy(problem, budget)
            ct = ct_greedy(problem, budget, budget_division="tbd")
            assert ct.final_similarity >= sgb.final_similarity

    def test_cross_target_help_is_counted(self):
        # protector (0,4) helps target (0,1) AND target (0,2) via shared node 4:
        # triangles (0,1,4) needs (0,4),(1,4); (0,2,4) needs (0,4),(2,4)
        graph = Graph(edges=[(0, 1), (0, 2), (0, 4), (1, 4), (2, 4)])
        problem = TPPProblem(graph, [(0, 1), (0, 2)], motif="triangle")
        result = ct_greedy(problem, budget=1, budget_division={(0, 1): 1, (0, 2): 0})
        # the single deletion charged to (0,1) should be (0,4): it also breaks
        # the other target's subgraph (cross-target bonus)
        assert result.protectors == ((0, 4),)
        assert result.final_similarity == 0

    def test_trace_monotone(self, problem):
        result = ct_greedy(problem, budget=5, budget_division="tbd")
        trace = result.similarity_trace
        assert all(a >= b for a, b in zip(trace, trace[1:]))

    def test_algorithm_label(self, problem):
        result = ct_greedy(problem, budget=2, budget_division="tbd")
        assert result.algorithm == "CT-Greedy-R:TBD"
        result = ct_greedy(problem, budget=2, budget_division="dbd", engine="recount")
        assert result.algorithm == "CT-Greedy:DBD"

    def test_engines_agree(self, problem):
        for budget in range(0, 5):
            cov = ct_greedy(problem, budget, budget_division="tbd", engine="coverage")
            rec = ct_greedy(problem, budget, budget_division="tbd", engine="recount")
            assert cov.final_similarity == rec.final_similarity

    def test_exhausted_targets_not_charged_further(self, problem):
        division = make_budget_division(problem, 3, "tbd")
        result = ct_greedy(problem, budget=3, budget_division=division)
        for target, protectors in result.allocation.items():
            assert len(protectors) <= division[target]


class TestZeroOwnGainFallback:
    """When only cross-gain edges remain, the deletion must be charged to the
    active target with the most remaining sub-budget (regression: it used to
    be charged to whichever active target came first, burning sub-budget of
    targets that could still have used it)."""

    @pytest.fixture
    def fallback_problem(self):
        # t1=(0,1): one triangle via 4; t2=(8,9): one triangle via 5;
        # t3=(2,3): two triangles via 6 and 7 but a zero sub-budget, so its
        # edges only ever carry cross-target gain for t1/t2.
        graph = Graph(
            edges=[
                (0, 1),
                (8, 9),
                (2, 3),
                (0, 4),
                (1, 4),
                (5, 8),
                (5, 9),
                (2, 6),
                (3, 6),
                (2, 7),
                (3, 7),
            ]
        )
        return TPPProblem(graph, [(0, 1), (8, 9), (2, 3)], motif="triangle")

    @pytest.mark.parametrize("engine", ["coverage", "coverage-set", "recount"])
    def test_fallback_charges_target_with_most_remaining_budget(
        self, fallback_problem, engine
    ):
        division = {(0, 1): 2, (8, 9): 3, (2, 3): 0}
        result = ct_greedy(
            fallback_problem, budget=5, budget_division=division, engine=engine
        )
        # steps 1-2 break t1's and t2's own triangles; step 3 is the first
        # fallback: (2,6) must be charged to t2 (remaining 2) not t1
        # (remaining 1, but first in target order); step 4 ties at remaining
        # 1 apiece and resolves to t1 by edge_sort_key of the target link
        assert result.protectors == ((0, 4), (5, 8), (2, 6), (2, 7))
        assert result.allocation[(8, 9)] == ((5, 8), (2, 6))
        assert result.allocation[(0, 1)] == ((0, 4), (2, 7))
        assert result.fully_protected
