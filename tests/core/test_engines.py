"""Tests for the coverage and recount marginal-gain engines."""

import pytest

from repro.core.engines import CoverageEngine, RecountEngine, make_engine
from repro.core.model import TPPProblem
from repro.graphs.graph import Graph
from repro.exceptions import EngineError


@pytest.fixture
def problem():
    graph = Graph(
        edges=[
            (0, 1),
            (2, 3),
            (0, 4),
            (1, 4),
            (0, 5),
            (1, 5),
            (2, 6),
            (3, 6),
            (7, 8),  # edge in no target subgraph
        ]
    )
    return TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")


class TestMakeEngine:
    def test_factory(self, problem):
        assert isinstance(make_engine(problem, "coverage"), CoverageEngine)
        assert isinstance(make_engine(problem, "recount"), RecountEngine)

    def test_factory_set_state(self, problem):
        engine = make_engine(problem, "coverage-set")
        assert isinstance(engine, CoverageEngine)
        assert engine.state_kind == "set"
        assert not engine.supports_fast_top
        assert make_engine(problem, "coverage").state_kind == "array"
        assert make_engine(problem, "coverage").supports_fast_top

    def test_unknown_engine(self, problem):
        with pytest.raises(EngineError):
            make_engine(problem, "magic")
        with pytest.raises(EngineError):
            CoverageEngine(problem, state="magic")


@pytest.mark.parametrize("engine_name", ["coverage", "coverage-set", "recount"])
class TestEngineBehaviour:
    def test_initial_similarity(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        assert engine.total_similarity() == 3
        assert engine.similarity_of((0, 1)) == 2
        assert engine.similarity_of((2, 3)) == 1

    def test_total_gain(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        assert engine.total_gain((0, 4)) == 1
        assert engine.total_gain((7, 8)) == 0

    def test_gain_by_target(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        assert engine.gain_by_target((2, 6)) == {(2, 3): 1}
        assert engine.gain_for_target((2, 6), (2, 3)) == 1
        assert engine.gain_for_target((2, 6), (0, 1)) == 0

    def test_commit_updates_state(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        broken = engine.commit((0, 4))
        assert broken == {(0, 1): 1}
        assert engine.total_similarity() == 2
        assert engine.total_gain((1, 4)) == 0  # its instance is already gone

    def test_full_protection(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        for edge in [(0, 4), (0, 5), (2, 6)]:
            engine.commit(edge)
        assert engine.is_fully_protected()


class TestCandidateSets:
    def test_coverage_restricts_candidates(self, problem):
        engine = CoverageEngine(problem, restrict_candidates=True)
        candidates = engine.candidate_edges()
        assert (7, 8) not in candidates
        assert (0, 4) in candidates

    def test_coverage_unrestricted_offers_all_edges(self, problem):
        engine = CoverageEngine(problem, restrict_candidates=False)
        candidates = engine.candidate_edges()
        assert (7, 8) in candidates
        engine.commit((7, 8))
        assert (7, 8) not in engine.candidate_edges()

    def test_recount_offers_all_remaining_edges(self, problem):
        engine = RecountEngine(problem)
        assert (7, 8) in engine.candidate_edges()
        engine.commit((7, 8))
        assert (7, 8) not in engine.candidate_edges()

    def test_targets_never_candidates(self, problem):
        for engine_name in ("coverage", "recount"):
            engine = make_engine(problem, engine_name)
            assert (0, 1) not in engine.candidate_edges()
            assert (2, 3) not in engine.candidate_edges()


@pytest.mark.parametrize("engine_name", ["coverage", "coverage-set", "recount"])
class TestBatchedProtocol:
    """The batched queries (kernel fast paths and generic defaults) agree."""

    def test_top_gain_edge(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        edge, gain = engine.top_gain_edge()
        assert gain == 1  # every candidate breaks exactly one triangle here
        assert engine.total_gain(edge) == 1
        # exhaust all gains: top becomes None
        for protector in [(0, 4), (0, 5), (2, 6)]:
            engine.commit(protector)
        assert engine.top_gain_edge() is None

    def test_top_k_edges(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        top = engine.top_k_edges(3)
        assert len(top) == 3
        assert all(gain == 1 for _, gain in top)
        assert len({edge for edge, _ in top}) == 3
        assert engine.top_k_edges(0) == []
        # ordering: descending gain, edge_sort_key ties
        assert top == sorted(
            top, key=lambda pair: (-pair[1], (str(pair[0][0]), str(pair[0][1])))
        )

    def test_iter_gain_breakdowns(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        rows = list(engine.iter_gain_breakdowns())
        assert rows  # at least the six triangle edges
        for edge, total, gains in rows:
            assert total == sum(gains.values()) > 0
            assert gains == engine.gain_by_target(edge)
        edges = [edge for edge, _, _ in rows]
        assert edges == sorted(edges, key=lambda e: (str(e[0]), str(e[1])))

    def test_target_gain_map(self, problem, engine_name):
        engine = make_engine(problem, engine_name)
        gains = engine.target_gain_map((2, 3))
        assert gains == {(2, 6): 1, (3, 6): 1}
        engine.commit((2, 6))
        assert engine.target_gain_map((2, 3)) == {}


class TestEnginesAgree:
    def test_gains_agree_on_every_edge(self, problem):
        coverage = make_engine(problem, "coverage")
        recount = make_engine(problem, "recount")
        for edge in problem.phase1_graph.edges():
            assert coverage.total_gain(edge) == recount.total_gain(edge)
            assert coverage.gain_by_target(edge) == recount.gain_by_target(edge)

    def test_gains_agree_after_commits(self, problem):
        coverage = make_engine(problem, "coverage")
        recount = make_engine(problem, "recount")
        for committed in [(0, 4), (2, 6)]:
            coverage.commit(committed)
            recount.commit(committed)
        for edge in [(0, 5), (1, 4), (1, 5), (3, 6), (7, 8)]:
            assert coverage.total_gain(edge) == recount.total_gain(edge)
        assert coverage.total_similarity() == recount.total_similarity()
