"""Tests for the WT-Greedy algorithm (Algorithm 3)."""

import pytest

from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.verification import verify_result
from repro.core.wt import wt_greedy
from repro.exceptions import BudgetError
from repro.graphs.graph import Graph


@pytest.fixture
def problem():
    graph = Graph(
        edges=[
            (0, 1),
            (2, 3),
            (0, 4),
            (1, 4),
            (0, 5),
            (1, 5),
            (2, 6),
            (3, 6),
            (2, 7),
            (3, 7),
        ]
    )
    return TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")


class TestWTGreedy:
    @pytest.mark.parametrize("division", ["tbd", "dbd", "uniform"])
    def test_respects_sub_budgets(self, problem, division):
        result = wt_greedy(problem, budget=3, budget_division=division)
        for target, protectors in result.allocation.items():
            assert len(protectors) <= result.budget_division[target]

    def test_full_protection_with_enough_budget(self, problem):
        result = wt_greedy(problem, budget=10, budget_division="tbd")
        assert result.fully_protected
        assert verify_result(problem, result)

    def test_zero_budget(self, problem):
        result = wt_greedy(problem, budget=0)
        assert result.protectors == ()

    def test_negative_budget_rejected(self, problem):
        with pytest.raises(BudgetError):
            wt_greedy(problem, budget=-1)

    def test_targets_processed_in_order(self, problem):
        result = wt_greedy(
            problem, budget=4, budget_division={(0, 1): 2, (2, 3): 2}
        )
        protectors = list(result.protectors)
        first_for_01 = result.allocation[(0, 1)]
        # all protectors charged to the first target come before the others
        if first_for_01 and result.allocation[(2, 3)]:
            last_first = max(protectors.index(edge) for edge in first_for_01)
            first_second = min(protectors.index(edge) for edge in result.allocation[(2, 3)])
            assert last_first < first_second

    def test_custom_target_order(self, problem):
        result = wt_greedy(
            problem,
            budget=2,
            budget_division={(0, 1): 1, (2, 3): 1},
            target_order=[(2, 3), (0, 1)],
        )
        protectors = list(result.protectors)
        assert protectors[0] in {(2, 6), (3, 6), (2, 7), (3, 7)}

    def test_invalid_target_order_rejected(self, problem):
        with pytest.raises(BudgetError):
            wt_greedy(problem, budget=2, target_order=[(0, 1)])

    def test_never_better_than_sgb(self, problem):
        for budget in range(1, 5):
            sgb = sgb_greedy(problem, budget)
            wt = wt_greedy(problem, budget, budget_division="tbd")
            assert wt.final_similarity >= sgb.final_similarity

    def test_fig2_ordering_wt_weakest(self, fig2):
        # SGB >= CT >= WT on the paper's own example with its budget division
        problem = TPPProblem(fig2.graph, fig2.target_list, motif="triangle")
        sgb = sgb_greedy(problem, 2)
        ct = ct_greedy(problem, 2, budget_division=fig2.ct_budget_division)
        wt = wt_greedy(problem, 2, budget_division=fig2.ct_budget_division)
        assert sgb.dissimilarity_gain >= ct.dissimilarity_gain >= wt.dissimilarity_gain

    def test_algorithm_label(self, problem):
        assert (
            wt_greedy(problem, 2, budget_division="tbd").algorithm == "WT-Greedy-R:TBD"
        )
        assert (
            wt_greedy(problem, 2, budget_division="dbd", engine="recount").algorithm
            == "WT-Greedy:DBD"
        )

    def test_engines_agree(self, problem):
        for budget in range(0, 5):
            cov = wt_greedy(problem, budget, budget_division="tbd", engine="coverage")
            rec = wt_greedy(problem, budget, budget_division="tbd", engine="recount")
            assert cov.final_similarity == rec.final_similarity

    def test_trace_monotone(self, problem):
        result = wt_greedy(problem, budget=6, budget_division="tbd")
        trace = result.similarity_trace
        assert all(a >= b for a, b in zip(trace, trace[1:]))
