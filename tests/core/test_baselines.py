"""Tests for the RD and RDT random baselines."""

import pytest

from repro.core.baselines import random_deletion, random_target_subgraph_deletion
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.verification import verify_result
from repro.exceptions import BudgetError
from repro.graphs.graph import Graph


@pytest.fixture
def problem(karate_like_graph):
    from repro.datasets.targets import sample_random_targets

    targets = sample_random_targets(karate_like_graph, 5, seed=2)
    return TPPProblem(karate_like_graph, targets, motif="triangle")


class TestRandomDeletion:
    def test_budget_respected_exactly(self, problem):
        result = random_deletion(problem, budget=7, seed=0)
        assert result.budget_used == 7

    def test_protectors_come_from_phase1_edges(self, problem):
        result = random_deletion(problem, budget=10, seed=1)
        phase1_edges = problem.phase1_graph.edge_set()
        assert all(edge in phase1_edges for edge in result.protectors)
        assert all(edge not in problem.target_set() for edge in result.protectors)

    def test_reproducible_with_seed(self, problem):
        a = random_deletion(problem, budget=5, seed=42)
        b = random_deletion(problem, budget=5, seed=42)
        assert a.protectors == b.protectors

    def test_different_seeds_usually_differ(self, problem):
        a = random_deletion(problem, budget=5, seed=1)
        b = random_deletion(problem, budget=5, seed=2)
        assert a.protectors != b.protectors

    def test_trace_consistent_with_released_graph(self, problem):
        result = random_deletion(problem, budget=8, seed=3)
        assert verify_result(problem, result)

    def test_negative_budget_rejected(self, problem):
        with pytest.raises(BudgetError):
            random_deletion(problem, budget=-1)

    def test_budget_larger_than_edge_count(self):
        graph = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        result = random_deletion(problem, budget=100, seed=0)
        assert result.budget_used == problem.phase1_graph.number_of_edges()


class TestRandomTargetSubgraphDeletion:
    def test_protectors_restricted_to_target_subgraph_edges(self, problem):
        result = random_target_subgraph_deletion(problem, budget=5, seed=0)
        candidates = problem.build_index().candidate_edges()
        assert all(edge in candidates for edge in result.protectors)

    def test_usually_better_than_rd_at_same_budget(self, problem):
        budget = 6
        rd_scores = [
            random_deletion(problem, budget, seed=s).final_similarity for s in range(8)
        ]
        rdt_scores = [
            random_target_subgraph_deletion(problem, budget, seed=s).final_similarity
            for s in range(8)
        ]
        assert sum(rdt_scores) <= sum(rd_scores)

    def test_never_better_than_greedy(self, problem):
        for budget in (2, 4, 6):
            greedy = sgb_greedy(problem, budget)
            for seed in range(5):
                rdt = random_target_subgraph_deletion(problem, budget, seed=seed)
                assert rdt.final_similarity >= greedy.final_similarity

    def test_exhausts_pool_gracefully(self):
        graph = Graph(edges=[(0, 1), (0, 2), (1, 2), (5, 6)])
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        result = random_target_subgraph_deletion(problem, budget=50, seed=0)
        # only the two triangle edges are candidates
        assert result.budget_used == 2
        assert result.fully_protected

    def test_verifies_against_recount(self, problem):
        result = random_target_subgraph_deletion(problem, budget=10, seed=5)
        assert verify_result(problem, result)
