"""Tests for the SGB-Greedy algorithm (Algorithm 1)."""

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.verification import verify_result
from repro.exceptions import BudgetError
from repro.graphs.graph import Graph
from repro.exceptions import EngineError


@pytest.fixture
def shared_protector_problem():
    """One edge (4, 5) sits in target subgraphs of both targets (Rectangle-free).

    Targets: (0, 1) and (2, 3).  Triangles: (0,1) via 4 and via 6; (2,3) via 4
    requires edges (2,4) and (3,4).  Edge (1,4) is only in (0,1)'s triangle.
    """
    graph = Graph(
        edges=[
            (0, 1),
            (2, 3),
            (0, 4),
            (1, 4),
            (0, 6),
            (1, 6),
            (2, 4),
            (3, 4),
        ]
    )
    return TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")


class TestSGBGreedy:
    @pytest.mark.parametrize("engine", ["coverage", "recount"])
    def test_budget_respected(self, shared_protector_problem, engine):
        result = sgb_greedy(shared_protector_problem, budget=1, engine=engine)
        assert result.budget_used <= 1

    @pytest.mark.parametrize("engine", ["coverage", "recount"])
    def test_full_protection_with_enough_budget(self, shared_protector_problem, engine):
        result = sgb_greedy(shared_protector_problem, budget=10, engine=engine)
        assert result.fully_protected
        assert verify_result(shared_protector_problem, result)

    def test_stops_early_when_no_gain(self, shared_protector_problem):
        result = sgb_greedy(shared_protector_problem, budget=100)
        # 3 target subgraphs in total, at most 3 deletions are ever useful
        assert result.budget_used <= 3

    def test_zero_budget(self, shared_protector_problem):
        result = sgb_greedy(shared_protector_problem, budget=0)
        assert result.protectors == ()
        assert result.final_similarity == result.initial_similarity

    def test_negative_budget_rejected(self, shared_protector_problem):
        with pytest.raises(BudgetError):
            sgb_greedy(shared_protector_problem, budget=-1)

    def test_trace_is_monotone_decreasing(self, shared_protector_problem):
        result = sgb_greedy(shared_protector_problem, budget=10)
        trace = result.similarity_trace
        assert all(a >= b for a, b in zip(trace, trace[1:]))
        assert trace[0] == result.initial_similarity

    def test_greedy_picks_highest_gain_first(self, shared_protector_problem):
        # the first deletion must break as many subgraphs as the best single
        # edge possibly could
        result = sgb_greedy(shared_protector_problem, budget=1)
        first_gain = result.initial_similarity - result.similarity_trace[1]
        state = shared_protector_problem.build_index().new_state()
        best_possible = max(
            state.gain(edge) for edge in shared_protector_problem.phase1_graph.edges()
        )
        assert first_gain == best_possible

    def test_algorithm_label_reflects_engine(self, shared_protector_problem):
        assert "SGB-Greedy-R" in sgb_greedy(shared_protector_problem, 1).algorithm
        assert (
            sgb_greedy(shared_protector_problem, 1, engine="recount").algorithm
            == "SGB-Greedy"
        )

    def test_engines_reach_same_final_similarity(self, shared_protector_problem):
        for budget in range(0, 5):
            coverage = sgb_greedy(shared_protector_problem, budget, engine="coverage")
            recount = sgb_greedy(shared_protector_problem, budget, engine="recount")
            assert coverage.final_similarity == recount.final_similarity


class TestLazySGB:
    def test_lazy_matches_plain_quality(self, shared_protector_problem):
        plain = sgb_greedy(shared_protector_problem, budget=10)
        lazy = sgb_greedy(shared_protector_problem, budget=10, lazy=True)
        assert lazy.final_similarity == plain.final_similarity
        assert lazy.budget_used == plain.budget_used

    def test_lazy_requires_coverage_engine(self, shared_protector_problem):
        with pytest.raises(EngineError):
            sgb_greedy(shared_protector_problem, budget=2, engine="recount", lazy=True)

    def test_lazy_on_larger_graph(self, small_problem):
        plain = sgb_greedy(small_problem, budget=15)
        lazy = sgb_greedy(small_problem, budget=15, lazy=True)
        assert lazy.final_similarity == plain.final_similarity
