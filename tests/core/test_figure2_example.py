"""The worked example of Fig. 2: SGB vs CT vs WT on the paper's own graph."""

import pytest

from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy


@pytest.fixture
def problem(fig2):
    return TPPProblem(fig2.graph, fig2.target_list, motif="triangle")


class TestFigure2Structure:
    def test_protector_participation_counts(self, fig2, problem):
        """p1 is in 2 target triangles, p2 in 3, p3 in 2, p4 in 1 (paper text)."""
        state = problem.build_index().new_state()
        assert state.gain(fig2.protectors["p1"]) == 2
        assert state.gain(fig2.protectors["p2"]) == 3
        assert state.gain(fig2.protectors["p3"]) == 2
        assert state.gain(fig2.protectors["p4"]) == 1

    def test_total_target_subgraphs(self, problem):
        assert problem.initial_similarity() == 7

    def test_p1_serves_t1_and_t2(self, fig2, problem):
        state = problem.build_index().new_state()
        gains = state.gain_by_target(fig2.protectors["p1"])
        assert gains == {fig2.targets["t1"]: 1, fig2.targets["t2"]: 1}

    def test_p2_serves_t2_t3_t4(self, fig2, problem):
        state = problem.build_index().new_state()
        gains = state.gain_by_target(fig2.protectors["p2"])
        assert gains == {
            fig2.targets["t2"]: 1,
            fig2.targets["t3"]: 1,
            fig2.targets["t4"]: 1,
        }


class TestFigure2Walkthrough:
    """The dissimilarity gains quoted in the paper: SGB = 5, CT = 4, WT = 3."""

    def test_sgb_gains_five(self, fig2, problem):
        result = sgb_greedy(problem, budget=2)
        assert result.dissimilarity_gain == 5
        assert set(result.protectors) == {
            fig2.protectors["p2"],
            fig2.protectors["p3"],
        }

    def test_sgb_first_step_gains_three(self, problem):
        result = sgb_greedy(problem, budget=1)
        assert result.dissimilarity_gain == 3

    def test_ct_gains_four(self, fig2, problem):
        result = ct_greedy(problem, budget=2, budget_division=fig2.ct_budget_division)
        assert result.dissimilarity_gain == 4
        assert result.protectors[0] == fig2.protectors["p2"]
        assert fig2.protectors["p1"] in result.protectors

    def test_wt_gains_three(self, fig2, problem):
        result = wt_greedy(problem, budget=2, budget_division=fig2.ct_budget_division)
        assert result.dissimilarity_gain == 3
        assert result.protectors[0] == fig2.protectors["p1"]

    def test_ordering_matches_paper(self, fig2, problem):
        sgb = sgb_greedy(problem, budget=2)
        ct = ct_greedy(problem, budget=2, budget_division=fig2.ct_budget_division)
        wt = wt_greedy(problem, budget=2, budget_division=fig2.ct_budget_division)
        assert (sgb.dissimilarity_gain, ct.dissimilarity_gain, wt.dissimilarity_gain) == (
            5,
            4,
            3,
        )

    @pytest.mark.parametrize("engine", ["coverage", "recount"])
    def test_both_engines_reproduce_the_walkthrough(self, fig2, problem, engine):
        sgb = sgb_greedy(problem, budget=2, engine=engine)
        ct = ct_greedy(
            problem, budget=2, budget_division=fig2.ct_budget_division, engine=engine
        )
        wt = wt_greedy(
            problem, budget=2, budget_division=fig2.ct_budget_division, engine=engine
        )
        assert sgb.dissimilarity_gain == 5
        assert ct.dissimilarity_gain == 4
        assert wt.dissimilarity_gain == 3
