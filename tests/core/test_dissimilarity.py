"""Tests for dissimilarity functions and the alternative perturbations of §VI-D."""

import pytest

from repro.core.dissimilarity import (
    LocalIndexDissimilarity,
    SubgraphDissimilarity,
    apply_link_addition,
    apply_link_switching,
)
from repro.graphs.graph import Graph
from repro.prediction.local import jaccard_index, resource_allocation_index


@pytest.fixture
def phase1_graph():
    # target (0, 1) removed; triangles via 2 and 3
    return Graph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (4, 5)])


class TestSubgraphDissimilarity:
    def test_initial_value_zero_with_tight_constant(self, phase1_graph):
        f = SubgraphDissimilarity([(0, 1)], "triangle", constant=2)
        assert f(phase1_graph) == 0
        assert f.similarity(phase1_graph) == 2

    def test_monotone_under_deletions(self, phase1_graph):
        f = SubgraphDissimilarity([(0, 1)], "triangle", constant=2)
        one_deleted = phase1_graph.without_edges([(0, 2)])
        two_deleted = one_deleted.without_edges([(0, 3)])
        assert f(phase1_graph) <= f(one_deleted) <= f(two_deleted)

    def test_marginal_gain_nonnegative(self, phase1_graph):
        f = SubgraphDissimilarity([(0, 1)], "triangle", constant=2)
        for edge in phase1_graph.edges():
            assert f.marginal_gain(phase1_graph, edge) >= 0


class TestLocalIndexDissimilarity:
    def test_evaluates_index_over_targets(self, phase1_graph):
        f = LocalIndexDissimilarity([(0, 1)], resource_allocation_index, constant=10)
        expected = 10 - resource_allocation_index(phase1_graph, 0, 1)
        assert f(phase1_graph) == pytest.approx(expected)

    def test_jaccard_dissimilarity_not_monotone(self):
        """The paper's Fig. 7 counter-example: deleting an edge can DECREASE
        the Jaccard dissimilarity, so greedy guarantees do not hold."""
        # target (u, v); u's neighbors: 1, 2, 3; v's neighbors: 2, 3, 4
        graph = Graph(
            edges=[("u", 1), ("u", 2), ("u", 3), ("v", 2), ("v", 3), ("v", 4)]
        )
        f = LocalIndexDissimilarity([("u", "v")], jaccard_index, constant=1.0)
        base = f(graph)
        gains = [f.marginal_gain(graph, edge) for edge in graph.edges()]
        assert any(gain < 0 for gain in gains), (
            "expected at least one deletion to decrease the Jaccard dissimilarity"
        )
        assert base == pytest.approx(1.0 - 2.0 / 4.0)


class TestLinkAddition:
    def test_adds_requested_number_of_new_edges(self, phase1_graph):
        perturbed, added = apply_link_addition(phase1_graph, 3, seed=0)
        assert len(added) == 3
        assert perturbed.number_of_edges() == phase1_graph.number_of_edges() + 3
        for edge in added:
            assert not phase1_graph.has_edge(*edge)

    def test_addition_never_increases_subgraph_dissimilarity(self, phase1_graph):
        f = SubgraphDissimilarity([(0, 1)], "triangle", constant=100)
        for seed in range(5):
            perturbed, _ = apply_link_addition(phase1_graph, 2, seed=seed)
            assert f(perturbed) <= f(phase1_graph)

    def test_saturated_graph_stops_early(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        perturbed, added = apply_link_addition(graph, 10, seed=1)
        assert len(added) == 0
        assert perturbed.number_of_edges() == 3


class TestLinkSwitching:
    def test_preserves_edge_count(self, phase1_graph):
        perturbed, deleted, added = apply_link_switching(phase1_graph, 2, seed=0)
        assert len(deleted) == len(added) == 2
        assert perturbed.number_of_edges() == phase1_graph.number_of_edges()

    def test_respects_protected_edges(self, phase1_graph):
        protected = [(0, 2), (0, 3)]
        _, deleted, _ = apply_link_switching(
            phase1_graph, 3, seed=1, protected_edges=protected
        )
        assert all(edge not in protected for edge in deleted)

    def test_switching_can_decrease_dissimilarity(self, phase1_graph):
        """Switching gives no monotonicity guarantee: across seeds the
        dissimilarity sometimes drops (new triangles appear)."""
        f = SubgraphDissimilarity([(0, 1)], "triangle", constant=100)
        base = f(phase1_graph)
        values = []
        for seed in range(20):
            perturbed, _, _ = apply_link_switching(phase1_graph, 2, seed=seed)
            values.append(f(perturbed))
        assert min(values) <= base  # not guaranteed to increase every time
