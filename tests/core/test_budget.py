"""Tests for the budget division strategies (TBD, DBD, uniform)."""

import pytest

from repro.core.budget import (
    degree_product_budget_division,
    make_budget_division,
    target_subgraph_budget_division,
    uniform_budget_division,
    validate_budget_division,
)
from repro.core.model import TPPProblem
from repro.exceptions import BudgetError
from repro.graphs.graph import Graph


@pytest.fixture
def problem():
    # target (0,1) has 3 triangles, target (2,3) has 1, target (0,9) has 0
    graph = Graph(
        edges=[
            (0, 1),
            (2, 3),
            (0, 9),
            (0, 4),
            (1, 4),
            (0, 5),
            (1, 5),
            (0, 6),
            (1, 6),
            (2, 7),
            (3, 7),
        ]
    )
    return TPPProblem(graph, [(0, 1), (2, 3), (0, 9)], motif="triangle")


class TestTBD:
    def test_proportional_to_subgraph_counts(self, problem):
        division = target_subgraph_budget_division(problem, budget=4)
        assert division[(0, 1)] == 3
        assert division[(2, 3)] == 1
        assert division[(0, 9)] == 0

    def test_caps_at_subgraph_count(self, problem):
        division = target_subgraph_budget_division(problem, budget=100)
        assert division[(0, 1)] == 3
        assert division[(2, 3)] == 1
        assert division[(0, 9)] == 0

    def test_budget_never_exceeded(self, problem):
        for budget in range(0, 10):
            division = target_subgraph_budget_division(problem, budget)
            assert sum(division.values()) <= budget

    def test_negative_budget_rejected(self, problem):
        with pytest.raises(BudgetError):
            target_subgraph_budget_division(problem, -1)


class TestDBD:
    def test_respects_caps_and_budget(self, problem):
        division = degree_product_budget_division(problem, budget=4)
        initial = problem.initial_similarity_by_target()
        assert sum(division.values()) <= 4
        for target, value in division.items():
            assert 0 <= value <= initial[target]

    def test_prefers_high_degree_product_targets(self, problem):
        # target (0,1): endpoints of high degree; (2,3) lower
        division = degree_product_budget_division(problem, budget=3)
        assert division[(0, 1)] >= division[(2, 3)]

    def test_negative_budget_rejected(self, problem):
        with pytest.raises(BudgetError):
            degree_product_budget_division(problem, -5)


class TestUniform:
    def test_even_split_with_caps(self, problem):
        division = uniform_budget_division(problem, budget=3)
        assert sum(division.values()) <= 3
        assert division[(0, 9)] == 0  # capped at |W_t| = 0


class TestMakeAndValidate:
    def test_make_by_name(self, problem):
        for name in ("tbd", "dbd", "uniform"):
            division = make_budget_division(problem, 4, name)
            assert sum(division.values()) <= 4

    def test_make_with_explicit_mapping(self, problem):
        explicit = {(0, 1): 2, (2, 3): 1}
        division = make_budget_division(problem, 3, explicit)
        assert division == explicit

    def test_unknown_strategy(self, problem):
        with pytest.raises(BudgetError):
            make_budget_division(problem, 3, "magic")

    def test_validate_unknown_target(self, problem):
        with pytest.raises(BudgetError):
            validate_budget_division(problem, 3, {(8, 9): 1})

    def test_validate_negative_sub_budget(self, problem):
        with pytest.raises(BudgetError):
            validate_budget_division(problem, 3, {(0, 1): -1})

    def test_validate_sum_exceeding_budget(self, problem):
        with pytest.raises(BudgetError):
            validate_budget_division(problem, 2, {(0, 1): 2, (2, 3): 1})

    def test_zero_budget_gives_all_zero(self, problem):
        division = make_budget_division(problem, 0, "tbd")
        assert all(value == 0 for value in division.values())
