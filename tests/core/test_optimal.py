"""Tests for the exact (branch-and-bound) protector selection."""

import pytest

from repro.core.model import TPPProblem
from repro.core.optimal import greedy_optimality_gap, optimal_protectors
from repro.core.sgb import sgb_greedy
from repro.core.verification import verify_result
from repro.exceptions import BudgetError, TPPError
from repro.graphs.graph import Graph


@pytest.fixture
def problem(fig2):
    return TPPProblem(fig2.graph, fig2.target_list, motif="triangle")


class TestOptimalProtectors:
    def test_fig2_optimum_matches_greedy(self, problem):
        # on the Fig. 2 example the greedy choice (p2, p3) is also optimal
        optimum = optimal_protectors(problem, budget=2)
        assert optimum.dissimilarity_gain == 5
        assert verify_result(problem, optimum)

    def test_budget_one(self, problem):
        optimum = optimal_protectors(problem, budget=1)
        assert optimum.dissimilarity_gain == 3  # p2 breaks three subgraphs

    def test_zero_budget(self, problem):
        optimum = optimal_protectors(problem, budget=0)
        assert optimum.protectors == ()
        assert optimum.dissimilarity_gain == 0

    def test_negative_budget(self, problem):
        with pytest.raises(BudgetError):
            optimal_protectors(problem, budget=-1)

    def test_candidate_limit(self, small_problem):
        with pytest.raises(TPPError):
            optimal_protectors(small_problem, budget=2, max_candidates=1)

    def test_optimum_at_least_greedy_everywhere(self, problem):
        for budget in range(0, 5):
            greedy = sgb_greedy(problem, budget)
            optimum = optimal_protectors(problem, budget)
            assert optimum.dissimilarity_gain >= greedy.dissimilarity_gain

    def test_optimum_beats_greedy_on_adversarial_instance(self):
        """Classic coverage trap: greedy picks the big overlapping edge first
        and needs 3 deletions; the optimum covers everything with 2."""
        # target (0,1) triangles via w1..w4; target (2,3) triangles via w1..w4
        # edge e* = (0, 9)... build explicit instance where greedy is tempted.
        graph = Graph(
            edges=[
                (0, 1),
                # triangles for (0,1): via a (edges 0-a, 1-a), via b, via c
                (0, "a"), (1, "a"),
                (0, "b"), (1, "b"),
                (0, "c"), (1, "c"),
            ]
        )
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        greedy = sgb_greedy(problem, budget=3)
        optimum = optimal_protectors(problem, budget=3)
        assert optimum.dissimilarity_gain == 3
        assert greedy.dissimilarity_gain == 3  # here both succeed; sanity only
        assert optimum.budget_used <= 3

    def test_trace_consistent(self, problem):
        optimum = optimal_protectors(problem, budget=2)
        trace = optimum.similarity_trace
        assert trace[0] == problem.initial_similarity()
        assert trace[-1] == problem.initial_similarity() - optimum.dissimilarity_gain


class TestOptimalityGap:
    def test_gap_within_theoretical_bound(self, problem):
        for budget in (1, 2, 3):
            greedy = sgb_greedy(problem, budget)
            gap = greedy_optimality_gap(problem, budget, greedy)
            assert gap is not None
            assert gap >= 1 - 1 / 2.718281828459045 - 1e-9
            assert gap <= 1.0 + 1e-9

    def test_gap_none_when_nothing_to_gain(self):
        graph = Graph(edges=[(0, 1), (5, 6)])
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        greedy = sgb_greedy(problem, budget=2)
        assert greedy_optimality_gap(problem, 2, greedy) is None

    def test_gap_on_random_small_graphs(self):
        import random

        from repro.graphs.generators import erdos_renyi_graph

        for seed in range(5):
            rng = random.Random(seed)
            graph = erdos_renyi_graph(10, 0.35, seed=seed)
            edges = sorted(graph.edges())
            if len(edges) < 3:
                continue
            targets = [edges[0], edges[1]]
            problem = TPPProblem(graph, targets, motif="triangle")
            if problem.initial_similarity() == 0:
                continue
            budget = rng.randint(1, 3)
            greedy = sgb_greedy(problem, budget)
            gap = greedy_optimality_gap(problem, budget, greedy, max_candidates=25)
            if gap is not None:
                assert gap >= 1 - 1 / 2.718281828459045 - 1e-9
