"""Tests for TPPProblem and ProtectionResult."""

import pytest

from repro.core.model import ProtectionResult, TPPProblem
from repro.exceptions import InvalidTargetError
from repro.graphs.graph import Graph
from repro.exceptions import BudgetError


@pytest.fixture
def graph():
    # targets (0,1), (2,3); triangles around both
    return Graph(
        edges=[(0, 1), (2, 3), (0, 4), (1, 4), (0, 5), (1, 5), (2, 6), (3, 6)]
    )


class TestTPPProblem:
    def test_valid_construction(self, graph):
        problem = TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")
        assert problem.targets == ((0, 1), (2, 3))
        assert problem.motif.name == "triangle"

    def test_targets_canonicalised(self, graph):
        problem = TPPProblem(graph, [(1, 0)], motif="triangle")
        assert problem.targets == ((0, 1),)

    def test_non_edge_target_rejected(self, graph):
        with pytest.raises(InvalidTargetError):
            TPPProblem(graph, [(0, 9)], motif="triangle")

    def test_duplicate_target_rejected(self, graph):
        with pytest.raises(InvalidTargetError):
            TPPProblem(graph, [(0, 1), (1, 0)], motif="triangle")

    def test_empty_target_set_rejected(self, graph):
        with pytest.raises(InvalidTargetError):
            TPPProblem(graph, [], motif="triangle")

    def test_phase1_graph_removes_targets_only(self, graph):
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        assert not problem.phase1_graph.has_edge(0, 1)
        assert problem.phase1_graph.number_of_edges() == graph.number_of_edges() - 1
        # original graph untouched
        assert graph.has_edge(0, 1)

    def test_initial_similarity(self, graph):
        problem = TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")
        assert problem.initial_similarity() == 3
        assert problem.initial_similarity_by_target() == {(0, 1): 2, (2, 3): 1}

    def test_default_constant_is_initial_similarity(self, graph):
        problem = TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")
        assert problem.constant == 3

    def test_constant_too_small_rejected(self, graph):
        with pytest.raises(InvalidTargetError):
            TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle", constant=1)

    def test_released_graph_removes_protectors(self, graph):
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        released = problem.released_graph([(0, 4)])
        assert not released.has_edge(0, 4)
        assert not released.has_edge(0, 1)

    def test_dissimilarity_of_protector_set(self, graph):
        problem = TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")
        assert problem.dissimilarity_of([]) == 0
        assert problem.dissimilarity_of([(0, 4)]) == 1
        assert problem.dissimilarity_of([(0, 4), (0, 5), (2, 6)]) == 3

    def test_index_cached(self, graph):
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        assert problem.build_index() is problem.build_index()

    def test_repr(self, graph):
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        assert "targets=1" in repr(problem)


class TestProtectionResult:
    def make_result(self, **overrides):
        defaults = dict(
            algorithm="SGB-Greedy-R",
            motif="triangle",
            budget=3,
            protectors=((0, 4), (0, 5)),
            similarity_trace=(3, 2, 0),
            initial_similarity=3,
            runtime_seconds=0.01,
        )
        defaults.update(overrides)
        return ProtectionResult(**defaults)

    def test_final_similarity_and_gain(self):
        result = self.make_result()
        assert result.final_similarity == 0
        assert result.dissimilarity_gain == 3
        assert result.fully_protected
        assert result.budget_used == 2

    def test_not_fully_protected(self):
        result = self.make_result(similarity_trace=(3, 2, 1))
        assert not result.fully_protected

    def test_similarity_at_clamps(self):
        result = self.make_result()
        assert result.similarity_at(0) == 3
        assert result.similarity_at(1) == 2
        assert result.similarity_at(10) == 0
        with pytest.raises(BudgetError):
            result.similarity_at(-1)

    def test_empty_trace_falls_back_to_initial(self):
        result = self.make_result(similarity_trace=(), protectors=())
        assert result.final_similarity == 3
        assert result.dissimilarity_gain == 0

    def test_released_graph(self, graph):
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        result = self.make_result()
        released = result.released_graph(problem)
        assert not released.has_edge(0, 4)
        assert not released.has_edge(0, 5)

    def test_summary_mentions_algorithm(self):
        assert "SGB-Greedy-R" in self.make_result().summary()
