"""Tests for SGB-Greedy+BB (branch-and-bound tail refinement)."""

import pytest

from repro.core.model import TPPProblem
from repro.core.refine import sgb_greedy_bb
from repro.core.sgb import sgb_greedy
from repro.datasets.synthetic import arenas_email_like, small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.exceptions import BudgetError
from repro.experiments.methods import run_method
from repro.service.registry import get_method, is_greedy_method


@pytest.fixture
def problem():
    graph = small_social_graph(seed=1)
    targets = sample_random_targets(graph, 5, seed=0)
    return TPPProblem(graph, targets, motif="triangle")


@pytest.fixture
def arenas_problem():
    graph = arenas_email_like(nodes=160, seed=2)
    targets = sample_random_targets(graph, 8, seed=1)
    return TPPProblem(graph, targets, motif="rectangle")


class TestSgbGreedyBB:
    def test_negative_budget_rejected(self, problem):
        with pytest.raises(BudgetError):
            sgb_greedy_bb(problem, -1)

    def test_zero_budget(self, problem):
        result = sgb_greedy_bb(problem, 0)
        assert result.protectors == ()
        assert result.similarity_trace == (problem.initial_similarity(),)

    def test_trace_shape(self, arenas_problem):
        result = sgb_greedy_bb(arenas_problem, 6)
        assert len(result.similarity_trace) == len(result.protectors) + 1
        assert result.similarity_trace[0] == arenas_problem.initial_similarity()
        # traces are monotone non-increasing (deletions never help the attacker)
        for before, after in zip(result.similarity_trace, result.similarity_trace[1:]):
            assert after <= before

    def test_deterministic(self, arenas_problem):
        first = sgb_greedy_bb(arenas_problem, 6)
        second = sgb_greedy_bb(arenas_problem, 6)
        assert first.protectors == second.protectors
        assert first.similarity_trace == second.similarity_trace
        assert first.extra["bb_nodes"] == second.extra["bb_nodes"]

    @pytest.mark.parametrize("budget", [2, 4, 6, 9])
    def test_never_worse_than_sgb(self, arenas_problem, budget):
        greedy = sgb_greedy(arenas_problem, budget)
        refined = sgb_greedy_bb(arenas_problem, budget)
        assert refined.final_similarity <= greedy.final_similarity

    def test_depth_zero_matches_plain_greedy(self, arenas_problem):
        greedy = sgb_greedy(arenas_problem, 5)
        refined = sgb_greedy_bb(arenas_problem, 5, depth=0)
        assert refined.protectors == greedy.protectors
        assert refined.similarity_trace == greedy.similarity_trace
        assert refined.extra["refined"] is False

    def test_engines_agree(self, problem):
        results = [
            sgb_greedy_bb(problem, 4, engine=engine)
            for engine in ("coverage", "coverage-set", "recount")
        ]
        baseline = results[0]
        for other in results[1:]:
            assert other.protectors == baseline.protectors
            assert other.similarity_trace == baseline.similarity_trace

    def test_algorithm_labels(self, problem):
        assert sgb_greedy_bb(problem, 2).algorithm == "SGB-Greedy-R+BB"
        assert sgb_greedy_bb(problem, 2, engine="recount").algorithm == "SGB-Greedy+BB"

    def test_full_protection_skips_search(self, problem):
        # budget above the critical budget: greedy stops on its own, so the
        # branch and bound is skipped and the result is plain greedy
        budget = problem.initial_similarity() + 1
        greedy = sgb_greedy(problem, budget)
        refined = sgb_greedy_bb(problem, budget)
        assert refined.final_similarity == 0
        assert refined.protectors == greedy.protectors
        assert refined.extra["bb_nodes"] == 0
        assert refined.extra["refined"] is False

    def test_strict_improvement_exists(self):
        # a known instance where the greedy tail is suboptimal: the bound
        # search must strictly beat SGB-Greedy under the same budget
        graph = arenas_email_like(nodes=200, seed=8)
        targets = sample_random_targets(graph, 10, seed=1)
        problem = TPPProblem(graph, targets, motif="rectangle")
        greedy = sgb_greedy(problem, 2)
        refined = sgb_greedy_bb(problem, 2)
        assert refined.final_similarity < greedy.final_similarity
        assert refined.extra["refined"] is True
        assert refined.extra["bb_nodes"] > 0


class TestRegistration:
    def test_registered_as_greedy(self):
        spec = get_method("SGB-Greedy+BB")
        assert spec.is_greedy
        assert is_greedy_method("SGB-Greedy+BB")

    def test_runs_through_registry(self, problem):
        result = run_method("SGB-Greedy+BB", problem, budget=3)
        assert result.algorithm == "SGB-Greedy-R+BB"
        assert result.budget_used <= 3
        assert result.extra["depth"] == 3
