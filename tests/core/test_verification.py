"""Tests for full-protection verification and the critical budget k*."""

import pytest

from repro.core.baselines import random_deletion
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.verification import (
    critical_budget,
    is_fully_protected,
    minimum_protectors_upper_bound,
    protection_ratio,
    verify_result,
)
from repro.exceptions import TPPError
from repro.graphs.graph import Graph


@pytest.fixture
def problem():
    graph = Graph(
        edges=[(0, 1), (0, 4), (1, 4), (0, 5), (1, 5), (2, 3), (2, 6), (3, 6)]
    )
    return TPPProblem(graph, [(0, 1), (2, 3)], motif="triangle")


class TestIsFullyProtected:
    def test_detects_remaining_subgraphs(self, problem):
        assert not is_fully_protected(problem.phase1_graph, problem.targets, "triangle")

    def test_detects_full_protection(self, problem):
        released = problem.phase1_graph.without_edges([(0, 4), (0, 5), (2, 6)])
        assert is_fully_protected(released, problem.targets, "triangle")


class TestVerifyResult:
    def test_accepts_consistent_result(self, problem):
        result = sgb_greedy(problem, budget=5)
        assert verify_result(problem, result)

    def test_rejects_tampered_result(self, problem):
        result = sgb_greedy(problem, budget=5)
        tampered = result.__class__(
            algorithm=result.algorithm,
            motif=result.motif,
            budget=result.budget,
            protectors=result.protectors[:-1],  # drop one deletion
            similarity_trace=result.similarity_trace,
            initial_similarity=result.initial_similarity,
        )
        assert not verify_result(problem, tampered)


class TestProtectionRatio:
    def test_full_and_partial(self, problem):
        full = sgb_greedy(problem, budget=10)
        assert protection_ratio(full) == pytest.approx(1.0)
        partial = sgb_greedy(problem, budget=1)
        assert 0.0 < protection_ratio(partial) < 1.0

    def test_zero_initial_similarity(self):
        graph = Graph(edges=[(0, 1), (5, 6)])
        problem = TPPProblem(graph, [(0, 1)], motif="triangle")
        result = sgb_greedy(problem, budget=3)
        assert protection_ratio(result) == 1.0


class TestCriticalBudget:
    def test_greedy_critical_budget(self, problem):
        k_star = critical_budget(problem, lambda p, k: sgb_greedy(p, k))
        # 3 target subgraphs; edges (0,4)/(0,5)/(2,6) (or symmetric picks)
        # suffice, and no single edge breaks two, so k* is exactly 3
        assert k_star == 3

    def test_upper_bound(self, problem):
        assert minimum_protectors_upper_bound(problem) == 3
        k_star = critical_budget(problem, lambda p, k: sgb_greedy(p, k))
        assert k_star <= minimum_protectors_upper_bound(problem)

    def test_failure_raises(self, problem):
        with pytest.raises(TPPError):
            critical_budget(
                problem, lambda p, k: random_deletion(p, 0, seed=0), max_budget=0
            )
