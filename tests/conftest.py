"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.model import TPPProblem
from repro.datasets.synthetic import figure2_example, small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import Graph


@pytest.fixture
def triangle_graph() -> Graph:
    """A single triangle 0-1-2."""
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square_graph() -> Graph:
    """A 4-cycle 0-1-2-3."""
    return Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])


@pytest.fixture
def karate_like_graph() -> Graph:
    """A ~60-node clustered social-like graph (deterministic)."""
    return small_social_graph(seed=3)


@pytest.fixture
def medium_graph() -> Graph:
    """A ~200-node clustered graph used by slower integration tests."""
    return powerlaw_cluster_graph(200, 4, 0.5, seed=11)


@pytest.fixture
def fig2():
    """The paper's Fig. 2 worked example."""
    return figure2_example()


@pytest.fixture
def fig2_problem(fig2) -> TPPProblem:
    """The Fig. 2 example wrapped as a Triangle-motif TPP problem."""
    return TPPProblem(fig2.graph, fig2.target_list, motif="triangle")


@pytest.fixture
def small_problem(karate_like_graph) -> TPPProblem:
    """A small Triangle-motif problem with 5 random targets."""
    targets = sample_random_targets(karate_like_graph, 5, seed=1)
    return TPPProblem(karate_like_graph, targets, motif="triangle")


@pytest.fixture(params=["triangle", "rectangle", "rectri"])
def motif_name(request) -> str:
    """Parametrised fixture iterating over the three paper motifs."""
    return request.param
