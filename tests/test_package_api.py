"""Tests for the top-level package API and the exception hierarchy."""

import pytest

import repro
from repro import exceptions


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing name {name}"

    def test_subpackage_all_names_resolve(self):
        import repro.anonymization
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.graphs
        import repro.motifs
        import repro.prediction
        import repro.utility

        for module in (
            repro.graphs,
            repro.motifs,
            repro.core,
            repro.prediction,
            repro.utility,
            repro.datasets,
            repro.experiments,
            repro.anonymization,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__} missing {name}"

    def test_quickstart_flow_via_top_level_names(self):
        graph = repro.Graph(edges=[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        problem = repro.TPPProblem(graph, [(0, 1)], motif="triangle")
        result = repro.sgb_greedy(problem, budget=5)
        assert result.fully_protected
        assert repro.verify_result(problem, result)


class TestExceptionHierarchy:
    def test_all_library_errors_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and name.endswith("Error"):
                assert issubclass(obj, exceptions.ReproError) or obj is exceptions.ReproError

    def test_key_errors_are_also_lookup_errors(self):
        assert issubclass(exceptions.NodeNotFoundError, KeyError)
        assert issubclass(exceptions.EdgeNotFoundError, KeyError)
        assert issubclass(exceptions.BudgetError, ValueError)

    def test_node_not_found_message(self):
        error = exceptions.NodeNotFoundError("alice")
        assert "alice" in str(error)
        assert error.node == "alice"

    def test_unknown_motif_lists_known(self):
        error = exceptions.UnknownMotifError("pentagon", {"triangle", "rectangle"})
        assert "pentagon" in str(error)
        assert "triangle" in str(error)


class TestSelectionHelpers:
    def test_argmax_edge_deterministic_tie_break(self):
        from repro.core.selection import argmax_edge

        edges = [(2, 3), (0, 1), (4, 5)]
        best = argmax_edge(edges, lambda edge: 1.0)
        assert best == ((0, 1), 1.0)

    def test_argmax_edge_empty(self):
        from repro.core.selection import argmax_edge

        assert argmax_edge([], lambda edge: 1.0) is None

    def test_argmax_edge_picks_max(self):
        from repro.core.selection import argmax_edge

        edges = [(0, 1), (1, 2), (2, 3)]
        best = argmax_edge(edges, lambda edge: edge[0])
        assert best == ((2, 3), 2)

    def test_stopwatch_monotone(self):
        from repro.core.selection import Stopwatch

        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0.0 <= first <= second
