"""End-to-end integration tests: dataset -> protection -> attack -> utility."""

import pytest

from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.verification import critical_budget, is_fully_protected, verify_result
from repro.core.wt import wt_greedy
from repro.datasets.synthetic import arenas_email_like
from repro.datasets.targets import sample_ego_targets, sample_random_targets
from repro.graphs.io import read_edge_list, write_edge_list
from repro.prediction.attack import AttackSimulator
from repro.utility.loss import compare_graphs


@pytest.fixture(scope="module")
def social_graph():
    """A mid-size Arenas-like graph shared by the integration scenarios."""
    return arenas_email_like(nodes=300, seed=5)


class TestFullPipeline:
    @pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri"])
    def test_protect_verify_attack_and_release(self, social_graph, motif, tmp_path):
        targets = sample_random_targets(social_graph, 8, seed=3)
        problem = TPPProblem(social_graph, targets, motif=motif)

        result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
        assert result.fully_protected
        assert verify_result(problem, result)

        released = result.released_graph(problem)
        assert is_fully_protected(released, targets, motif)

        # the motif-based adversary scores every target zero on the release
        report = AttackSimulator(
            {"triangle": "triangle_motif", "rectangle": "rectangle_motif", "rectri": "rectri_motif"}[motif],
            negative_samples=50,
            seed=0,
        ).run(released, targets)
        assert report.fully_defended

        # the released graph can be exported and re-imported with its edge
        # set intact (plain edge lists drop isolated nodes by construction)
        path = tmp_path / "released.edges"
        write_edge_list(released, path)
        assert read_edge_list(path).edge_set() == released.edge_set()

    def test_budget_constrained_protection_still_reduces_exposure(self, social_graph):
        targets = sample_random_targets(social_graph, 8, seed=4)
        problem = TPPProblem(social_graph, targets, motif="triangle")
        half_budget = max(1, problem.initial_similarity() // 2)
        result = sgb_greedy(problem, half_budget)

        simulator = AttackSimulator("common_neighbors", negative_samples=100, seed=1)
        before = simulator.run(problem.phase1_graph, targets)
        after = simulator.run(result.released_graph(problem), targets)
        assert sum(after.target_scores.values()) < sum(before.target_scores.values())

    def test_utility_loss_small_at_full_protection(self, social_graph):
        targets = sample_random_targets(social_graph, 8, seed=5)
        problem = TPPProblem(social_graph, targets, motif="triangle")
        result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
        report = compare_graphs(
            social_graph,
            result.released_graph(problem),
            metrics=("clust", "cn", "r"),
        )
        assert report.average_loss_ratio < 0.10

    def test_ego_scenario_all_algorithms_agree_on_full_protection(self, social_graph):
        """The introduction's scenario: one user hides several of their links."""
        targets = sample_ego_targets(social_graph, count=4, seed=2)
        problem = TPPProblem(social_graph, targets, motif="triangle")
        budget = problem.initial_similarity() + 1
        for result in (
            sgb_greedy(problem, budget),
            ct_greedy(problem, budget, budget_division="tbd"),
            wt_greedy(problem, budget, budget_division="tbd"),
        ):
            assert result.fully_protected
            assert verify_result(problem, result)

    def test_critical_budget_ordering(self, social_graph):
        """k*(SGB) <= k*(CT) <= ... : the global greedy needs the fewest deletions."""
        targets = sample_random_targets(social_graph, 6, seed=6)
        problem = TPPProblem(social_graph, targets, motif="triangle")
        k_sgb = critical_budget(problem, lambda p, k: sgb_greedy(p, k))
        k_ct = critical_budget(
            problem, lambda p, k: ct_greedy(p, k, budget_division="tbd")
        )
        assert k_sgb <= k_ct
        assert k_sgb <= problem.initial_similarity()

    def test_rectangle_needs_largest_critical_budget(self, social_graph):
        """The paper's observation: Rectangle is the hardest motif to defend."""
        targets = sample_random_targets(social_graph, 6, seed=7)
        k_star = {}
        for motif in ("triangle", "rectangle", "rectri"):
            problem = TPPProblem(social_graph, targets, motif=motif)
            k_star[motif] = critical_budget(problem, lambda p, k: sgb_greedy(p, k))
        assert k_star["rectangle"] >= k_star["triangle"]
