"""Make the repository root importable so ``tools.reprolint`` resolves.

The library tests run with ``PYTHONPATH=src``; the linter lives next to
``src`` at the repository root, so these tests add that root explicitly.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
