"""Tests for the reprolint static-analysis suite.

Every rule family gets three fixtures: a snippet it must flag, a clean
variant it must not, and a suppressed variant (with a reason) it must
absorb.  A suppression *without* a reason is itself a finding, and the
whole library must lint clean — that last test is the one that keeps
``python -m tools.reprolint src/repro`` green in CI.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint import ALL_RULES, RULES_BY_FAMILY, lint_paths, lint_source
from tools.reprolint.driver import build_parser, main
from tools.reprolint.rules.bench_schema import extract_gate_registry

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(source: str, family: str, relpath: str = "mod.py"):
    """Lint a dedented snippet with a single rule family."""
    findings, suppressed = lint_source(
        textwrap.dedent(source),
        path=relpath,
        rules=[RULES_BY_FAMILY[family]],
        relpath=relpath,
    )
    return findings, suppressed


def codes(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# R1 — determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    FLAGGED = """
        from typing import Set, Tuple

        def order(edges: Set[Tuple[int, int]]):
            result = []
            for edge in edges:
                result.append(edge)
            return result
        """

    def test_set_iteration_flagged(self):
        findings, _ = lint(self.FLAGGED, "R1")
        assert codes(findings) == ["R1-set-iteration"]

    def test_sorted_iteration_clean(self):
        findings, _ = lint(
            """
            from typing import Set, Tuple

            def order(edges: Set[Tuple[int, int]]):
                result = []
                for edge in sorted(edges):
                    result.append(edge)
                return result
            """,
            "R1",
        )
        assert findings == []

    def test_order_insensitive_consumers_clean(self):
        findings, _ = lint(
            """
            def summarise(edges: set):
                return len(edges), min(edges), sorted(edges), set(edges)
            """,
            "R1",
        )
        assert findings == []

    def test_float_sum_over_set_flagged(self):
        # float addition is not associative: a sum over hash order is not
        # bit-identical across runs
        findings, _ = lint(
            """
            def total(weights: set):
                return sum(weights)
            """,
            "R1",
        )
        assert codes(findings) == ["R1-set-iteration"]

    def test_suppression_with_reason_absorbs(self):
        findings, suppressed = lint(
            """
            from typing import Set

            def collect(edges: Set[int]):
                out = set()
                # reprolint: disable=R1-set-iteration(only accumulates into a set; order-insensitive)
                for edge in edges:
                    out.add(edge)
                return out
            """,
            "R1",
        )
        assert findings == []
        assert codes(suppressed) == ["R1-set-iteration"]

    def test_unseeded_global_random_flagged(self):
        findings, _ = lint(
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
            "R1",
        )
        assert codes(findings) == ["R1-unseeded-random"]

    def test_seeded_rng_clean(self):
        findings, _ = lint(
            """
            import random

            def pick(items, seed):
                rng = random.Random(seed)
                return rng.choice(items)
            """,
            "R1",
        )
        assert findings == []

    def test_datasets_modules_may_draw_entropy(self):
        findings, _ = lint(
            """
            import random

            def sample(items):
                return random.choice(items)
            """,
            "R1",
            relpath="src/repro/datasets/loader.py",
        )
        assert findings == []

    def test_set_pop_flagged(self):
        findings, _ = lint(
            """
            def take(edges: set):
                return edges.pop()
            """,
            "R1",
        )
        assert codes(findings) == ["R1-set-pop"]

    def test_disabled_family_reports_nothing(self):
        findings, suppressed = lint_source(textwrap.dedent(self.FLAGGED), rules=[])
        assert findings == []
        assert suppressed == []


# ----------------------------------------------------------------------
# R2 — numpy boundary
# ----------------------------------------------------------------------
class TestNumpyBoundaryRule:
    FLAGGED = """
        import numpy as np

        __all__ = ["total"]

        def total(values):
            arr = np.asarray(values)
            return arr.sum()
        """

    def test_numpy_scalar_return_flagged(self):
        findings, _ = lint(self.FLAGGED, "R2")
        assert codes(findings) == ["R2-numpy-return"]

    def test_int_conversion_clean(self):
        findings, _ = lint(
            """
            import numpy as np

            __all__ = ["total"]

            def total(values):
                arr = np.asarray(values)
                return int(arr.sum())
            """,
            "R2",
        )
        assert findings == []

    def test_module_without_public_surface_ignored(self):
        source = self.FLAGGED.replace('__all__ = ["total"]', "")
        findings, _ = lint(source, "R2")
        assert findings == []

    def test_scalar_inside_dict_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            __all__ = ["stats"]

            def stats(values):
                arr = np.asarray(values)
                return {"max": arr.max(), "n": len(values)}
            """,
            "R2",
        )
        assert codes(findings) == ["R2-numpy-return"]

    def test_suppression_with_reason_absorbs(self):
        findings, suppressed = lint(
            """
            import numpy as np

            __all__ = ["total"]

            def total(values):
                arr = np.asarray(values)
                # reprolint: disable=R2-numpy-return(caller converts; hot path avoids boxing)
                return arr.sum()
            """,
            "R2",
        )
        assert findings == []
        assert codes(suppressed) == ["R2-numpy-return"]


# ----------------------------------------------------------------------
# R3 — lock discipline
# ----------------------------------------------------------------------
class TestLockDisciplineRule:
    FLAGGED = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # reprolint: guarded-by(_lock)

            def bump(self):
                self._count += 1
        """

    def test_unlocked_write_flagged(self):
        findings, _ = lint(self.FLAGGED, "R3")
        assert codes(findings) == ["R3-unlocked-write"]

    def test_locked_write_clean(self):
        findings, _ = lint(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # reprolint: guarded-by(_lock)

                def bump(self):
                    with self._lock:
                        self._count += 1
            """,
            "R3",
        )
        assert findings == []

    def test_standalone_guard_covers_multiline_assignment(self):
        findings, _ = lint(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    # reprolint: guarded-by(_lock)
                    self._index = build(
                        big=True,
                    )

                def swap(self):
                    self._index = build()
            """,
            "R3",
        )
        assert codes(findings) == ["R3-unlocked-write"]

    def test_wrong_lock_flagged(self):
        findings, _ = lint(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self._count = 0  # reprolint: guarded-by(_lock)

                def bump(self):
                    with self._other:
                        self._count += 1
            """,
            "R3",
        )
        assert codes(findings) == ["R3-unlocked-write"]

    def test_subscript_and_del_flagged(self):
        findings, _ = lint(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}  # reprolint: guarded-by(_lock)

                def poke(self, key):
                    self._cache[key] = 1
                    del self._cache[key]
            """,
            "R3",
        )
        assert codes(findings) == ["R3-unlocked-write", "R3-unlocked-write"]

    def test_suppression_with_reason_absorbs(self):
        findings, suppressed = lint(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # reprolint: guarded-by(_lock)

                def _bump_locked(self):
                    # reprolint: disable=R3-unlocked-write(only called from solve() which holds _lock)
                    self._count += 1
            """,
            "R3",
        )
        assert findings == []
        assert codes(suppressed) == ["R3-unlocked-write"]


# ----------------------------------------------------------------------
# R4 — pickle safety
# ----------------------------------------------------------------------
class TestPickleSafetyRule:
    FLAGGED = """
        from concurrent.futures import ProcessPoolExecutor

        def run(items):
            pool = ProcessPoolExecutor()
            return [pool.submit(lambda x: x + 1, item) for item in items]
        """

    def test_lambda_submit_flagged(self):
        findings, _ = lint(self.FLAGGED, "R4")
        assert codes(findings) == ["R4-unpicklable-task"]

    def test_module_level_function_clean(self):
        findings, _ = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x + 1

            def run(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, items))
            """,
            "R4",
        )
        assert findings == []

    def test_local_function_flagged(self):
        findings, _ = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                def work(x):
                    return x + 1

                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, items))
            """,
            "R4",
        )
        assert codes(findings) == ["R4-unpicklable-task"]

    def test_lambda_initializer_flagged(self):
        findings, _ = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run():
                pool = ProcessPoolExecutor(initializer=lambda: None)
                return pool
            """,
            "R4",
        )
        assert codes(findings) == ["R4-unpicklable-task"]

    def test_suppression_with_reason_absorbs(self):
        findings, suppressed = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                pool = ProcessPoolExecutor()
                # reprolint: disable=R4-unpicklable-task(demonstration snippet; never executed)
                return [pool.submit(lambda x: x + 1, item) for item in items]
            """,
            "R4",
        )
        assert findings == []
        assert codes(suppressed) == ["R4-unpicklable-task"]


# ----------------------------------------------------------------------
# R5 — exception taxonomy
# ----------------------------------------------------------------------
class TestExceptionTaxonomyRule:
    FLAGGED = """
        def check(value):
            if value < 0:
                raise ValueError(f"value must be >= 0, got {value}")
        """

    def test_bare_valueerror_flagged(self):
        findings, _ = lint(self.FLAGGED, "R5")
        assert codes(findings) == ["R5-untyped-raise"]

    def test_typed_exception_clean(self):
        findings, _ = lint(
            """
            from repro.exceptions import BudgetError

            def check(value):
                if value < 0:
                    raise BudgetError(f"value must be >= 0, got {value}")
            """,
            "R5",
        )
        assert findings == []

    def test_typeerror_is_a_programming_error_and_passes(self):
        findings, _ = lint(
            """
            def check(value):
                if not isinstance(value, int):
                    raise TypeError(f"need an int, got {type(value)}")
            """,
            "R5",
        )
        assert findings == []

    def test_reraise_clean(self):
        findings, _ = lint(
            """
            def forward():
                try:
                    work()
                except KeyError:
                    raise
            """,
            "R5",
        )
        assert findings == []

    def test_taxonomy_module_is_exempt(self):
        findings, _ = lint(
            self.FLAGGED, "R5", relpath="src/repro/exceptions.py"
        )
        assert findings == []

    def test_suppression_with_reason_absorbs(self):
        findings, suppressed = lint(
            """
            def check(value):
                if value < 0:
                    # reprolint: disable=R5-untyped-raise(scaffolding; replaced by typed error in the next PR)
                    raise ValueError(f"value must be >= 0, got {value}")
            """,
            "R5",
        )
        assert findings == []
        assert codes(suppressed) == ["R5-untyped-raise"]


# ----------------------------------------------------------------------
# R6 — bench schema (project-level, driven against a fake repo tree)
# ----------------------------------------------------------------------
FAKE_GATE = '''
def _check_flags(fresh, committed, flags):
    for flag in flags:
        assert fresh.get(flag) == committed.get(flag)


def compare_snapshot(fresh, committed):
    _check_flags(fresh, committed, ("snapshots_identical",))
    return committed.get("cold_start_speedup")


def compare(fresh, committed):
    if committed.get("kind") == "snapshot":
        return compare_snapshot(fresh, committed)
    return fresh.get("sgb_speedup")
'''


def make_fake_project(tmp_path: Path) -> Path:
    root = tmp_path / "proj"
    (root / "benchmarks").mkdir(parents=True)
    (root / "pyproject.toml").write_text("[project]\nname='x'\n")
    (root / "benchmarks" / "check_bench_regression.py").write_text(FAKE_GATE)
    return root


class TestBenchSchemaRule:
    def run_rule(self, root: Path):
        return RULES_BY_FAMILY["R6"].check_project(root)

    def test_registry_extraction(self, tmp_path):
        root = make_fake_project(tmp_path)
        registry = extract_gate_registry(
            root / "benchmarks" / "check_bench_regression.py"
        )
        assert registry.top_level["snapshot"] == {
            "snapshots_identical",
            "cold_start_speedup",
        }
        assert registry.top_level["engine_kernel"] == {"sgb_speedup"}

    def test_complete_report_clean(self, tmp_path):
        root = make_fake_project(tmp_path)
        (root / "BENCH_demo.json").write_text(
            json.dumps(
                {
                    "kind": "snapshot",
                    "snapshots_identical": True,
                    "cold_start_speedup": 4.2,
                }
            )
        )
        assert self.run_rule(root) == []

    def test_missing_gate_key_flagged(self, tmp_path):
        root = make_fake_project(tmp_path)
        (root / "BENCH_demo.json").write_text(
            json.dumps({"kind": "snapshot", "snapshots_identical": True})
        )
        findings = self.run_rule(root)
        assert codes(findings) == ["R6-bench-schema"]
        assert "cold_start_speedup" in findings[0].message

    def test_unknown_kind_flagged(self, tmp_path):
        root = make_fake_project(tmp_path)
        (root / "BENCH_demo.json").write_text(json.dumps({"kind": "mystery"}))
        findings = self.run_rule(root)
        assert codes(findings) == ["R6-bench-schema"]
        assert "mystery" in findings[0].message

    def test_emitting_script_must_spell_gate_keys(self, tmp_path):
        root = make_fake_project(tmp_path)
        (root / "BENCH_demo.json").write_text(
            json.dumps(
                {
                    "kind": "snapshot",
                    "snapshots_identical": True,
                    "cold_start_speedup": 4.2,
                }
            )
        )
        (root / "benchmarks" / "bench_demo.py").write_text(
            'REPORT = {"snapshots_identical": True}\n'
        )
        findings = self.run_rule(root)
        assert codes(findings) == ["R6-bench-schema"]
        assert "cold_start_speedup" in findings[0].message

    def test_unreadable_report_flagged(self, tmp_path):
        root = make_fake_project(tmp_path)
        (root / "BENCH_demo.json").write_text("{not json")
        findings = self.run_rule(root)
        assert codes(findings) == ["R6-bench-schema"]

    def test_real_gate_registry_has_all_kinds(self):
        registry = extract_gate_registry(
            REPO_ROOT / "benchmarks" / "check_bench_regression.py"
        )
        assert {
            "service_throughput",
            "index_build",
            "snapshot",
            "index_update",
            "engine_kernel",
        } <= registry.kinds


# ----------------------------------------------------------------------
# R7 — native-boundary
# ----------------------------------------------------------------------
class TestNativeBoundaryRule:
    def test_ctypes_import_outside_native_flagged(self):
        findings, _ = lint(
            """
            import ctypes

            def f():
                return ctypes.c_long(0)
            """,
            "R7",
            relpath="src/repro/motifs/coverage.py",
        )
        assert codes(findings) == ["R7-ctypes-import"]
        assert "repro._native" in findings[0].message

    def test_ctypes_from_import_flagged(self):
        findings, _ = lint(
            "from ctypes import c_long\n",
            "R7",
            relpath="src/repro/service/session.py",
        )
        assert codes(findings) == ["R7-ctypes-import"]

    def test_ctypes_inside_native_package_clean(self):
        findings, _ = lint(
            "import ctypes\n",
            "R7",
            relpath="src/repro/_native/build.py",
        )
        assert findings == []

    def test_ctypes_outside_repro_package_clean(self):
        findings, _ = lint(
            "import ctypes\n",
            "R7",
            relpath="tools/somewhere.py",
        )
        assert findings == []

    def test_undeclared_symbol_flagged(self):
        findings, _ = lint(
            """
            import ctypes

            def load(path):
                lib = ctypes.CDLL(path)
                kill = lib.repro_kill_instances
                kill.argtypes = [ctypes.c_void_p]
                return kill
            """,
            "R7",
            relpath="src/repro/_native/build.py",
        )
        assert codes(findings) == ["R7-undeclared-symbol"]
        assert "restype" in findings[0].message

    def test_fully_declared_symbol_clean(self):
        findings, _ = lint(
            """
            import ctypes

            def load(path):
                lib = ctypes.CDLL(path)
                kill = lib.repro_kill_instances
                kill.argtypes = [ctypes.c_void_p]
                kill.restype = ctypes.c_long
                return kill
            """,
            "R7",
            relpath="src/repro/_native/build.py",
        )
        assert findings == []

    def test_unguarded_native_call_flagged(self):
        findings, _ = lint(
            """
            class State:
                def delete_edge(self, edge_id):
                    return self._native.kill_instances(self._ctx, edge_id)
            """,
            "R7",
            relpath="src/repro/motifs/coverage.py",
        )
        assert codes(findings) == ["R7-unguarded-native-call"]

    def test_aliased_unguarded_call_flagged(self):
        findings, _ = lint(
            """
            class State:
                def walk(self):
                    native = self._native
                    return native.heap_pop(self._keys, self._ids, 3)
            """,
            "R7",
            relpath="src/repro/motifs/coverage.py",
        )
        assert codes(findings) == ["R7-unguarded-native-call"]

    def test_guarded_call_clean(self):
        findings, _ = lint(
            """
            class State:
                def delete_edge(self, edge_id):
                    if self._native is not None:
                        return self._native.kill_instances(self._ctx, edge_id)
                    return self._slow(edge_id)
            """,
            "R7",
            relpath="src/repro/motifs/coverage.py",
        )
        assert findings == []

    def test_dispatch_method_clean(self):
        findings, _ = lint(
            """
            class State:
                def _delete_edge_native(self, edge_id):
                    return self._native.kill_instances(self._ctx, edge_id)
            """,
            "R7",
            relpath="src/repro/motifs/coverage.py",
        )
        assert findings == []

    def test_suppression_with_reason_absorbs(self):
        findings, suppressed = lint(
            """
            import ctypes  # reprolint: disable=R7-ctypes-import(FFI demo script)
            """,
            "R7",
            relpath="src/repro/motifs/demo.py",
        )
        assert findings == []
        assert codes(suppressed) == ["R7-ctypes-import"]


# ----------------------------------------------------------------------
# R8 — shard boundary
# ----------------------------------------------------------------------
class TestShardBoundaryRule:
    def test_direct_construction_in_service_flagged(self):
        findings, _ = lint(
            """
            from repro.motifs.enumeration import TargetSubgraphIndex

            def open_session(graph, targets, motif):
                return TargetSubgraphIndex(graph, targets, motif)
            """,
            "R8",
            relpath="src/repro/service/service.py",
        )
        assert codes(findings) == ["R8-direct-index"]
        assert "for_filtered_targets" in findings[0].message

    def test_attribute_construction_flagged(self):
        findings, _ = lint(
            """
            import repro.motifs.enumeration as enumeration

            class Session:
                def build(self, graph, targets):
                    self._index = enumeration.TargetSubgraphIndex(
                        graph, targets, "triangle"
                    )
            """,
            "R8",
            relpath="src/repro/service/sharding.py",
        )
        assert codes(findings) == ["R8-direct-index"]
        assert "'build'" in findings[0].message

    def test_module_level_construction_flagged(self):
        findings, _ = lint(
            """
            from repro.motifs.enumeration import TargetSubgraphIndex

            INDEX = TargetSubgraphIndex(None, (), "triangle")
            """,
            "R8",
            relpath="src/repro/service/registry.py",
        )
        assert codes(findings) == ["R8-direct-index"]
        assert "<module>" in findings[0].message

    def test_sanctioned_factory_clean(self):
        findings, _ = lint(
            """
            from repro.motifs.enumeration import TargetSubgraphIndex

            def _build_shard_index(phase1_graph, shard_targets, motif, workers):
                return TargetSubgraphIndex(
                    phase1_graph, shard_targets, motif, build_workers=workers
                )
            """,
            "R8",
            relpath="src/repro/service/sharding.py",
        )
        assert findings == []

    def test_nested_function_inside_factory_still_flagged(self):
        findings, _ = lint(
            """
            from repro.motifs.enumeration import TargetSubgraphIndex

            def _build_shard_index(graph, targets, motif):
                def sneaky():
                    return TargetSubgraphIndex(graph, targets, motif)
                return sneaky()
            """,
            "R8",
            relpath="src/repro/service/sharding.py",
        )
        assert codes(findings) == ["R8-direct-index"]

    def test_outside_service_package_clean(self):
        findings, _ = lint(
            """
            from repro.motifs.enumeration import TargetSubgraphIndex

            def build_index(graph, targets, motif):
                return TargetSubgraphIndex(graph, targets, motif)
            """,
            "R8",
            relpath="src/repro/core/model.py",
        )
        assert findings == []

    def test_other_calls_in_service_clean(self):
        findings, _ = lint(
            """
            def open_session(problem, factory):
                index = problem.build_index()
                return factory.for_filtered_targets(problem.graph, index)
            """,
            "R8",
            relpath="src/repro/service/service.py",
        )
        assert findings == []

    def test_suppression_with_reason_absorbs(self):
        findings, suppressed = lint(
            """
            from repro.motifs.enumeration import TargetSubgraphIndex

            def probe(graph, targets):
                return TargetSubgraphIndex(graph, targets, "triangle")  # reprolint: disable=R8-direct-index(diagnostic probe)
            """,
            "R8",
            relpath="src/repro/service/probe.py",
        )
        assert findings == []
        assert codes(suppressed) == ["R8-direct-index"]


# ----------------------------------------------------------------------
# Suppression engine
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_suppression_without_reason_is_a_finding(self):
        findings, suppressed = lint(
            """
            def check(value):
                # reprolint: disable=R5-untyped-raise
                raise ValueError("nope")
            """,
            "R5",
        )
        # the reason-less directive does NOT suppress, and is itself flagged
        assert sorted(codes(findings)) == ["R0-suppression", "R5-untyped-raise"]
        assert suppressed == []

    def test_unknown_directive_is_a_finding(self):
        findings, _ = lint(
            """
            x = 1  # reprolint: enable=R5
            """,
            "R5",
        )
        assert codes(findings) == ["R0-suppression"]

    def test_family_wide_suppression(self):
        findings, suppressed = lint(
            """
            def check(value):
                # reprolint: disable=R5(layer has no taxonomy yet)
                raise ValueError("nope")
            """,
            "R5",
        )
        assert findings == []
        assert codes(suppressed) == ["R5-untyped-raise"]

    def test_reason_may_contain_parentheses(self):
        findings, suppressed = lint(
            """
            def check(value):
                # reprolint: disable=R5-untyped-raise(sorted by (-gain, key) later (twice))
                raise ValueError("nope")
            """,
            "R5",
        )
        assert findings == []
        assert codes(suppressed) == ["R5-untyped-raise"]

    def test_inline_suppression_applies_to_its_own_line(self):
        findings, suppressed = lint(
            """
            def check(value):
                raise ValueError("nope")  # reprolint: disable=R5-untyped-raise(inline form)
            """,
            "R5",
        )
        assert findings == []
        assert codes(suppressed) == ["R5-untyped-raise"]

    def test_suppression_does_not_leak_to_other_lines(self):
        findings, _ = lint(
            """
            def check(value):
                # reprolint: disable=R5-untyped-raise(covers only the next line)
                raise ValueError("one")

            def check2(value):
                raise ValueError("two")
            """,
            "R5",
        )
        assert codes(findings) == ["R5-untyped-raise"]

    def test_syntax_error_reported_as_parse_finding(self):
        findings, _ = lint_source("def broken(:\n    pass\n")
        assert codes(findings) == ["R0-parse"]


# ----------------------------------------------------------------------
# Driver / CLI
# ----------------------------------------------------------------------
class TestDriver:
    def test_all_eight_families_registered(self):
        assert sorted(RULES_BY_FAMILY) == [
            "R1",
            "R2",
            "R3",
            "R4",
            "R5",
            "R6",
            "R7",
            "R8",
        ]
        assert len(ALL_RULES) == 8

    def test_parser_accepts_select_and_format(self):
        args = build_parser().parse_args(
            ["src", "--select", "R1", "--format", "json"]
        )
        assert args.select == ["R1"] and args.format == "json"

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    raise ValueError('x')\n")
        assert main([str(bad)]) == 1
        capsys.readouterr()
        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n")
        assert main([str(good)]) == 0
        capsys.readouterr()
        assert main([]) == 2

    def test_disabling_a_family_turns_its_rule_off(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    raise ValueError('x')\n")
        assert main([str(bad)]) == 1
        capsys.readouterr()
        assert main([str(bad), "--disable", "R5"]) == 0
        capsys.readouterr()

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    raise ValueError('x')\n")
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["by_rule"] == {"R5-untyped-raise": 1}
        assert payload["findings"][0]["line"] == 2

    def test_library_lints_clean(self):
        """The acceptance gate: src/repro must be clean under every rule."""
        findings, stats = lint_paths(
            [str(REPO_ROOT / "src" / "repro")], project_root=REPO_ROOT
        )
        assert findings == []
        assert stats.files > 60
        # the four documented suppressions (benign set iterations) are the
        # only silenced findings — a new one needs a reason to land here
        assert stats.suppressed == 4
