"""Tests for utility loss ratios (Tables III-V machinery)."""

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.graphs.generators import complete_graph
from repro.utility.loss import UtilityLossReport, compare_graphs, utility_loss_ratio


class TestUtilityLossRatio:
    def test_basic_ratio(self):
        assert utility_loss_ratio(2.0, 1.0) == pytest.approx(0.5)
        assert utility_loss_ratio(2.0, 2.0) == 0.0

    def test_absolute_value(self):
        assert utility_loss_ratio(2.0, 3.0) == pytest.approx(0.5)
        assert utility_loss_ratio(-2.0, -1.0) == pytest.approx(0.5)

    def test_zero_original(self):
        assert utility_loss_ratio(0.0, 0.0) == 0.0
        assert utility_loss_ratio(0.0, 0.5) == 1.0


class TestCompareGraphs:
    def test_identical_graphs_have_zero_loss(self):
        graph = complete_graph(6)
        report = compare_graphs(graph, graph.copy())
        assert report.average_loss_ratio == pytest.approx(0.0)
        assert all(value == 0.0 for value in report.loss_ratios.values())

    def test_explicit_metric_subset(self):
        graph = complete_graph(6)
        report = compare_graphs(graph, graph.copy(), metrics=("clust", "cn"))
        assert set(report.loss_ratios) == {"clust", "cn"}

    def test_loss_grows_with_more_deletions(self):
        graph = small_social_graph(seed=1)
        light = graph.without_edges(list(graph.edges())[:3])
        heavy = graph.without_edges(list(graph.edges())[:30])
        metrics = ("clust", "cn")
        light_report = compare_graphs(graph, light, metrics=metrics)
        heavy_report = compare_graphs(graph, heavy, metrics=metrics)
        assert heavy_report.average_loss_ratio >= light_report.average_loss_ratio

    def test_report_rows_and_summary(self):
        graph = complete_graph(5)
        report = compare_graphs(graph, graph.copy(), metrics=("clust",))
        rows = report.as_rows()
        assert rows[0][0] == "clust"
        assert "average utility loss" in report.summary()
        assert report.average_loss_percent == pytest.approx(0.0)

    def test_empty_report(self):
        report = UtilityLossReport({}, {}, {})
        assert report.average_loss_ratio == 0.0


class TestEndToEndUtility:
    def test_full_protection_costs_little_utility(self):
        """The paper's headline: full target protection at a few percent loss."""
        graph = small_social_graph(seed=2)
        targets = sample_random_targets(graph, 4, seed=0)
        problem = TPPProblem(graph, targets, motif="triangle")
        result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
        assert result.fully_protected
        report = compare_graphs(
            graph, result.released_graph(problem), metrics=("clust", "cn")
        )
        # small graph, handful of deletions: loss stays below 25%
        assert report.average_loss_ratio < 0.25

    def test_protection_of_more_targets_costs_more(self):
        graph = small_social_graph(seed=2)
        few = sample_random_targets(graph, 3, seed=1)
        many = sample_random_targets(graph, 10, seed=1)
        losses = []
        for targets in (few, many):
            problem = TPPProblem(graph, targets, motif="triangle")
            result = sgb_greedy(problem, budget=problem.initial_similarity() + 1)
            report = compare_graphs(
                graph, result.released_graph(problem), metrics=("clust", "cn")
            )
            losses.append(report.average_loss_ratio)
        assert losses[1] >= losses[0]
