"""Tests for the Table II utility metrics."""

import pytest

from repro.exceptions import UtilityError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.utility.metrics import (
    ALL_METRICS,
    SCALABLE_METRICS,
    assortativity_metric,
    average_path_length_metric,
    clustering_metric,
    compute_metrics,
    core_number_metric,
    default_metrics_for,
    eigenvalue_metric,
    modularity_metric,
)


class TestIndividualMetrics:
    def test_average_path_length_complete_graph(self):
        assert average_path_length_metric(complete_graph(5)) == pytest.approx(1.0)

    def test_average_path_length_sampled(self):
        graph = cycle_graph(20)
        exact = average_path_length_metric(graph)
        sampled = average_path_length_metric(graph, sample_size=5, seed=1)
        assert sampled == pytest.approx(exact, rel=0.3)

    def test_clustering(self):
        assert clustering_metric(complete_graph(4)) == pytest.approx(1.0)
        assert clustering_metric(cycle_graph(5)) == 0.0

    def test_assortativity_star_is_negative(self):
        assert assortativity_metric(star_graph(6)) < 0

    def test_assortativity_regular_graph_is_zero(self):
        assert assortativity_metric(cycle_graph(8)) == 0.0

    def test_assortativity_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.karate_club_graph()
        from repro.graphs.convert import from_networkx

        expected = networkx.degree_assortativity_coefficient(nx_graph)
        assert assortativity_metric(from_networkx(nx_graph)) == pytest.approx(
            expected, abs=1e-6
        )

    def test_core_number_metric(self):
        assert core_number_metric(complete_graph(5)) == pytest.approx(4.0)
        assert core_number_metric(Graph()) == 0.0

    def test_eigenvalue_metric(self):
        assert eigenvalue_metric(complete_graph(4)) == pytest.approx(4.0)

    def test_modularity_metric_two_cliques(self):
        graph = Graph()
        for offset in (0, 10):
            for u in range(offset, offset + 5):
                for v in range(u + 1, offset + 5):
                    graph.add_edge(u, v)
        graph.add_edge(0, 10)
        assert modularity_metric(graph) > 0.3


class TestComputeMetrics:
    def test_all_metric_names_supported(self):
        graph = complete_graph(6)
        values = compute_metrics(graph, metrics=list(ALL_METRICS))
        assert set(values) == set(ALL_METRICS)

    def test_unknown_metric_rejected(self):
        with pytest.raises(UtilityError):
            compute_metrics(complete_graph(3), metrics=["pagerank"])

    def test_default_metrics_depend_on_size(self):
        small = path_graph(10)
        assert default_metrics_for(small) == tuple(ALL_METRICS)
        assert default_metrics_for(small, large_graph_threshold=5) == SCALABLE_METRICS

    def test_defaults_used_when_metrics_omitted(self):
        values = compute_metrics(path_graph(6))
        assert set(values) == set(ALL_METRICS)

    def test_path_length_sampling_passthrough(self):
        graph = cycle_graph(30)
        values = compute_metrics(graph, metrics=["l"], path_length_sample=5)
        assert values["l"] > 0
