"""Tests for the decorator-based method registry."""

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.exceptions import ExperimentError
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    baseline_method_names,
    get_method,
    greedy_method_names,
    is_greedy_method,
    method_names,
    register_method,
    unregister_method,
)

#: The paper's legend order (plus the +BB extension, slotted after its base
#: method), which the registration metadata must reproduce.
LEGEND_ORDER = (
    "SGB-Greedy",
    "SGB-Greedy+BB",
    "CT-Greedy:DBD",
    "WT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:TBD",
    "RD",
    "RDT",
)


@pytest.fixture
def problem():
    graph = small_social_graph(seed=1)
    targets = sample_random_targets(graph, 5, seed=0)
    return TPPProblem(graph, targets, motif="triangle")


class TestBuiltinRegistrations:
    def test_legend_order_derived_from_metadata(self):
        assert method_names() == LEGEND_ORDER

    def test_greedy_baseline_split(self):
        assert greedy_method_names() == LEGEND_ORDER[:6]
        assert baseline_method_names() == ("RD", "RDT")
        assert is_greedy_method("SGB-Greedy")
        assert not is_greedy_method("RD")
        assert not is_greedy_method("Oracle")

    def test_legacy_collections_derive_from_registry(self):
        from repro.experiments import methods as legacy

        assert legacy.ALL_METHODS == LEGEND_ORDER
        assert set(legacy.GREEDY_METHODS) == set(greedy_method_names())
        assert set(legacy.BASELINE_METHODS) == set(baseline_method_names())

    def test_get_method_unknown_lists_valid_names(self):
        with pytest.raises(ExperimentError) as excinfo:
            get_method("Oracle")
        message = str(excinfo.value)
        for name in LEGEND_ORDER:
            assert name in message


class TestCustomRegistration:
    def test_register_solve_unregister(self, problem):
        @register_method("SGB-Lazy-Off", kind="greedy", order=999)
        def _run(problem, budget, engine, seed, **options):
            return sgb_greedy(problem, budget, engine=engine, lazy=False)

        try:
            assert "SGB-Lazy-Off" in method_names()
            assert is_greedy_method("SGB-Lazy-Off")
            # visible through the legacy live view too
            from repro.experiments import methods as legacy

            assert "SGB-Lazy-Off" in legacy.ALL_METHODS

            service = ProtectionService(problem)
            custom = service.solve(ProtectionRequest("SGB-Lazy-Off", 3))
            builtin = service.solve(ProtectionRequest("SGB-Greedy", 3))
            assert custom.protectors == builtin.protectors
        finally:
            unregister_method("SGB-Lazy-Off")
        assert "SGB-Lazy-Off" not in method_names()

    def test_package_views_live_but_default_sweep_pinned(self):
        """`repro.experiments.ALL_METHODS` must see plugins (live view), while
        the default reproduction sweep stays the paper's seven curves."""

        @register_method("Plugin-Live", kind="baseline", order=998)
        def _run(problem, budget, engine, seed, **options):
            raise AssertionError("never called")

        try:
            import repro.experiments as experiments
            from repro.experiments.config import PAPER_METHODS, ExperimentConfig

            assert "Plugin-Live" in experiments.ALL_METHODS
            assert "Plugin-Live" in experiments.BASELINE_METHODS
            assert ExperimentConfig().methods == PAPER_METHODS
            assert "Plugin-Live" not in ExperimentConfig().methods
        finally:
            unregister_method("Plugin-Live")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):

            @register_method("SGB-Greedy")
            def _clash(problem, budget, engine, seed, **options):
                raise AssertionError("never called")

    def test_replace_allows_override(self, problem):
        original = get_method("RD")

        @register_method("RD", kind="baseline", order=original.order, replace=True)
        def _stub(problem, budget, engine, seed, **options):
            return original.runner(problem, 0, engine, seed)

        try:
            service = ProtectionService(problem)
            result = service.solve(ProtectionRequest("RD", 5, seed=1))
            assert result.budget_used == 0
        finally:
            register_method(
                "RD", kind="baseline", order=original.order, replace=True
            )(original.runner)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ExperimentError):
            register_method("Oracle", kind="magic")
