"""Unit and fault-injection tests for the sharded protection service.

The property suite (``tests/property/test_sharding_differential.py``)
carries the bit-identity theorems; this file pins the machinery around
them: assignment/env-var parsing, routing metadata, the deterministic
budget split, atomic failure of a mid-scatter-gather shard, batch fan-out
byte-identity, bundle round trips (whole session and single shard) and
the sharded delta path.
"""

import zipfile

import pytest

from repro.exceptions import (
    BudgetError,
    ConstantError,
    DeltaError,
    ExperimentError,
    ShardError,
    SnapshotFormatError,
    SnapshotMismatchError,
)
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import canonical_edge, edge_sort_key
from repro.datasets.targets import sample_random_targets
from repro.motifs.updates import EdgeDelta
from repro.persistence import load_sharded_session, save_delta_snapshot
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    ShardedProtectionService,
    shard_assignment,
    shards_from_env,
)


@pytest.fixture(scope="module")
def instance():
    graph = powerlaw_cluster_graph(120, 3, 0.5, seed=5)
    targets = tuple(
        sorted(sample_random_targets(graph, 6, seed=2), key=edge_sort_key)
    )
    return graph, targets


@pytest.fixture(scope="module")
def unsharded(instance):
    graph, targets = instance
    return ProtectionService(graph, targets, motif="triangle")


@pytest.fixture(scope="module")
def sharded(instance):
    graph, targets = instance
    return ShardedProtectionService(graph, targets, motif="triangle", shards=3)


def fresh_sharded(instance, shards=3):
    graph, targets = instance
    return ShardedProtectionService(
        graph, targets, motif="triangle", shards=shards
    )


def trace(result):
    return (result.protectors, result.similarity_trace)


class TestShardsFromEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert shards_from_env() == 1
        assert shards_from_env(default=4) == 4

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "  ")
        assert shards_from_env(default=2) == 2

    def test_integer_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert shards_from_env() == 3

    @pytest.mark.parametrize("raw", ["three", "2.5", "0", "-1"])
    def test_bad_values_raise(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SHARDS", raw)
        with pytest.raises(ShardError):
            shards_from_env()

    def test_constructor_reads_env(self, instance, monkeypatch):
        graph, targets = instance
        monkeypatch.setenv("REPRO_SHARDS", "2")
        service = ShardedProtectionService(graph, targets, motif="triangle")
        assert service.shard_count == 2


class TestAssignment:
    def test_round_robin_over_sorted_targets(self):
        targets = [(9, 10), (1, 2), (5, 6), (3, 4), (7, 8)]
        pieces = shard_assignment(targets, 2)
        ordered = sorted(
            (canonical_edge(*t) for t in targets), key=edge_sort_key
        )
        assert pieces == (tuple(ordered[0::2]), tuple(ordered[1::2]))

    def test_clamped_to_target_count(self):
        pieces = shard_assignment([(1, 2), (3, 4)], 5)
        assert len(pieces) == 2
        assert all(len(piece) == 1 for piece in pieces)

    def test_duplicates_refused(self):
        with pytest.raises(ShardError, match="duplicate"):
            shard_assignment([(1, 2), (2, 1)], 2)

    def test_empty_refused(self):
        with pytest.raises(ShardError, match="empty"):
            shard_assignment([], 2)

    def test_nonpositive_refused(self):
        with pytest.raises(ShardError):
            shard_assignment([(1, 2)], 0)

    def test_session_exposes_assignment(self, sharded, instance):
        _, targets = instance
        assert sharded.shard_count == 3
        flattened = sorted(
            (t for piece in sharded.assignment for t in piece),
            key=edge_sort_key,
        )
        assert tuple(flattened) == sharded.targets == tuple(targets)
        for piece in sharded.assignment:
            for target in piece:
                assert sharded.shard_of(target) == sharded.assignment.index(
                    piece
                )

    def test_shard_of_unknown_target_raises(self, sharded):
        with pytest.raises(ShardError, match="not a target"):
            sharded.shard_of((999, 1000))


class TestRouting:
    def test_single_shard_route_metadata(self, sharded):
        piece = sharded.assignment[1]
        result = sharded.solve(
            ProtectionRequest("SGB-Greedy", 3, targets=piece)
        )
        meta = result.extra["service"]["shards"]
        assert meta == {"count": 3, "mode": "single", "routed": [1]}
        assert result.extra["service"]["request"]["budget"] == 3

    def test_scatter_gather_metadata(self, sharded):
        result = sharded.solve(ProtectionRequest("SGB-Greedy", 6))
        meta = result.extra["service"]["shards"]
        assert meta["count"] == 3
        assert meta["mode"] == "scatter-gather"
        assert meta["routed"] == [0, 1, 2]
        assert sum(meta["budgets"].values()) <= 6
        assert meta["deduplicated_protectors"] >= 0
        assert result.extra["service"]["kernel"] == sharded.kernel

    def test_duplicate_request_targets_refused(self, sharded):
        target = sharded.targets[0]
        with pytest.raises(ExperimentError, match="duplicate"):
            sharded.solve(
                ProtectionRequest("SGB-Greedy", 2, targets=(target, target))
            )

    def test_unknown_request_targets_refused(self, sharded):
        with pytest.raises(ExperimentError, match="not targets"):
            sharded.solve(
                ProtectionRequest("SGB-Greedy", 2, targets=((999, 1000),))
            )

    def test_zero_budget_answers_empty(self, sharded):
        result = sharded.solve(ProtectionRequest("SGB-Greedy", 0))
        assert result.protectors == ()
        assert result.similarity_trace == (sharded.pristine_similarity(),)


class TestBudgetSplit:
    def test_explicit_division_is_authoritative(self, sharded):
        piece_a = sharded.assignment[0]
        piece_b = sharded.assignment[1]
        division = {piece_a[0]: 2, piece_b[0]: 1}
        result = sharded.solve(
            ProtectionRequest(
                "CT-Greedy:DBD",
                5,
                targets=(piece_a[0], piece_b[0]),
                budget_division=division,
            )
        )
        meta = result.extra["service"]["shards"]
        assert meta["budgets"] == {"0": 2, "1": 1}
        assert result.budget_division == {
            target: division[target]
            for target in sorted(division, key=edge_sort_key)
        }

    def test_division_naming_outside_targets_refused(self, sharded):
        piece_a = sharded.assignment[0]
        piece_b = sharded.assignment[1]
        with pytest.raises(BudgetError, match="outside"):
            sharded.solve(
                ProtectionRequest(
                    "CT-Greedy:DBD",
                    4,
                    targets=(piece_a[0], piece_b[0]),
                    budget_division={piece_a[0]: 1, piece_b[1]: 1},
                )
            )

    def test_division_exceeding_budget_refused(self, sharded):
        piece_a = sharded.assignment[0]
        piece_b = sharded.assignment[1]
        with pytest.raises(BudgetError, match="allocates"):
            sharded.solve(
                ProtectionRequest(
                    "CT-Greedy:DBD",
                    2,
                    targets=(piece_a[0], piece_b[0]),
                    budget_division={piece_a[0]: 2, piece_b[0]: 2},
                )
            )

    def test_proportional_split_is_deterministic(self, sharded):
        request = ProtectionRequest("SGB-Greedy", 5)
        first = sharded.solve(request)
        second = sharded.solve(request)
        assert trace(first) == trace(second)
        assert (
            first.extra["service"]["shards"]["budgets"]
            == second.extra["service"]["shards"]["budgets"]
        )


class TestFaultInjection:
    def test_mid_scatter_gather_failure_is_atomic(
        self, instance, monkeypatch
    ):
        """One shard raising fails the whole request with a typed
        ShardError, no partial merge escapes, accounting is untouched and
        the session keeps serving."""
        service = fresh_sharded(instance)
        request = ProtectionRequest("SGB-Greedy", 6)
        healthy = service.solve(request)
        served_before = service.queries_served

        class Boom(RuntimeError):
            pass

        original = ProtectionService.solve

        def exploding(shard_self, shard_request):
            if shard_self is service.shards[1]:
                raise Boom("shard 1 lost its state")
            return original(shard_self, shard_request)

        monkeypatch.setattr(ProtectionService, "solve", exploding)
        with pytest.raises(ShardError, match="shard 1 failed") as excinfo:
            service.solve(request)
        assert excinfo.value.shard == 1
        assert isinstance(excinfo.value.__cause__, Boom)
        # a failed request is never counted and never partially merged
        assert service.queries_served == served_before
        monkeypatch.setattr(ProtectionService, "solve", original)
        assert trace(service.solve(request)) == trace(healthy)

    def test_single_shard_route_failure_propagates_uncounted(
        self, instance, monkeypatch
    ):
        service = fresh_sharded(instance)
        piece = service.assignment[0]
        served_before = service.queries_served

        def exploding(shard_self, shard_request):
            raise RuntimeError("boom")

        monkeypatch.setattr(ProtectionService, "solve", exploding)
        with pytest.raises(RuntimeError):
            service.solve(ProtectionRequest("SGB-Greedy", 2, targets=piece))
        assert service.queries_served == served_before


class TestDifferentialSubsetSessions:
    def test_shard_equals_unsharded_subset_session(self, sharded, unsharded):
        """Satellite differential: the unsharded session's subset
        sub-session over a shard's exact targets answers identically to
        that shard — same construction, same arrays, same traces."""
        for piece in sharded.assignment:
            for method in ("SGB-Greedy", "WT-Greedy:TBD", "RD"):
                request = ProtectionRequest(method, 3, targets=piece, seed=7)
                assert trace(sharded.solve(request)) == trace(
                    unsharded.solve(request)
                ), (piece, method)

    def test_partial_piece_within_one_shard(self, sharded, unsharded):
        piece = sharded.assignment[2]
        subset = piece[:1]
        request = ProtectionRequest("SGB-Greedy", 2, targets=subset)
        assert trace(sharded.solve(request)) == trace(unsharded.solve(request))


class TestSolveMany:
    def test_modes_are_byte_identical(self, sharded):
        requests = [
            ProtectionRequest("SGB-Greedy", 2),
            ProtectionRequest("SGB-Greedy", 4),
            ProtectionRequest(
                "CT-Greedy:TBD", 3, targets=sharded.assignment[0]
            ),
            ProtectionRequest("RD", 3, seed=11),
        ]
        serial = [sharded.solve(request) for request in requests]
        threaded = sharded.solve_many(requests, workers=3, mode="thread")
        assert [trace(r) for r in threaded] == [trace(r) for r in serial]
        processed = sharded.solve_many(requests, workers=2, mode="process")
        assert [trace(r) for r in processed] == [trace(r) for r in serial]

    def test_unknown_mode_refused(self, sharded):
        with pytest.raises(ExperimentError, match="mode"):
            sharded.solve_many(
                [ProtectionRequest("SGB-Greedy", 2)], workers=2, mode="rocket"
            )


class TestBundleRoundTrip:
    def test_whole_session_round_trips(self, sharded, tmp_path):
        bundle = sharded.save_session(tmp_path / "session.tppshards")
        restored = ShardedProtectionService.from_session(bundle)
        assert restored.index_source == "snapshot"
        assert restored.shard_count == sharded.shard_count
        assert restored.assignment == sharded.assignment
        assert restored.content_hash() == sharded.content_hash()
        for request in (
            ProtectionRequest("SGB-Greedy", 5),
            ProtectionRequest("WT-Greedy:TBD", 4),
        ):
            assert trace(restored.solve(request)) == trace(
                sharded.solve(request)
            )

    def test_single_shard_cold_start(self, sharded, tmp_path):
        bundle = sharded.save_session(tmp_path / "session.tppshards")
        shard = load_sharded_session(bundle, shard=1)
        assert isinstance(shard, ProtectionService)
        assert shard.index_source == "snapshot"
        assert shard.targets == sharded.assignment[1]
        request = ProtectionRequest("SGB-Greedy", 3)
        routed = sharded.solve(
            request.with_overrides(targets=sharded.assignment[1])
        )
        assert trace(shard.solve(request)) == trace(routed)

    def test_out_of_range_shard_refused(self, sharded, tmp_path):
        bundle = sharded.save_session(tmp_path / "session.tppshards")
        with pytest.raises(ShardError, match="holds shards"):
            load_sharded_session(bundle, shard=7)

    def test_not_a_zip_refused(self, tmp_path):
        path = tmp_path / "garbage.tppshards"
        path.write_bytes(b"definitely not a bundle")
        with pytest.raises(SnapshotFormatError):
            load_sharded_session(path)

    def test_tampered_member_refused(self, sharded, tmp_path):
        bundle = sharded.save_session(tmp_path / "session.tppshards")
        swapped = tmp_path / "tampered.tppshards"
        with zipfile.ZipFile(bundle) as source, zipfile.ZipFile(
            swapped, "w"
        ) as out:
            for name in source.namelist():
                data = source.read(name)
                if name == "shard-0001.tppsnap":
                    data = source.read("shard-0002.tppsnap")
                out.writestr(name, data)
        with pytest.raises((SnapshotMismatchError, SnapshotFormatError)):
            load_sharded_session(swapped)

    def test_byte_stable_rewrites(self, sharded, tmp_path):
        first = sharded.save_session(tmp_path / "a.tppshards")
        second = sharded.save_session(tmp_path / "b.tppshards")
        assert first.read_bytes() == second.read_bytes()


class TestConstruction:
    def test_targets_required_with_graph(self, instance):
        graph, _ = instance
        with pytest.raises(ExperimentError, match="target links"):
            ShardedProtectionService(graph, shards=2)

    def test_constant_below_combined_initial_refused(self, instance):
        graph, targets = instance
        with pytest.raises(ConstantError):
            ShardedProtectionService(
                graph, targets, motif="triangle", constant=0, shards=2
            )

    def test_from_problem_adopts_everything(self, unsharded, instance):
        _, targets = instance
        service = ShardedProtectionService(unsharded.problem, shards=2)
        assert service.shard_count == 2
        assert service.targets == tuple(targets)
        assert service.constant == unsharded.problem.constant
        assert service.motif.name == "triangle"

    def test_number_of_instances_sums_shards(self, sharded, unsharded):
        assert sharded.number_of_instances() == sum(
            shard.index.number_of_instances() for shard in sharded.shards
        )
        assert (
            sharded.number_of_instances()
            == unsharded.index.number_of_instances()
        )


class TestShardedDelta:
    def make_delta(self, service, count=2):
        target_set = set(service.targets)
        phase1 = service.shards[0].problem.phase1_graph
        deletions = [
            canonical_edge(*edge)
            for edge in sorted(phase1.edges())
            if canonical_edge(*edge) not in target_set
        ][:count]
        return EdgeDelta.from_edges(delete=deletions)

    def test_outcome_shape_and_counters(self, instance):
        service = fresh_sharded(instance)
        delta = self.make_delta(service)
        before_hash = service.content_hash()
        outcome = service.apply_delta(delta)
        assert len(outcome.outcomes) == service.shard_count
        assert outcome.constant == service.constant
        assert set(outcome.touched_shards) == {
            position
            for position, shard_outcome in enumerate(outcome.outcomes)
            if shard_outcome.changed_targets
        }
        assert service.deltas_applied == 1
        assert service.index_source == "delta"
        assert service.content_hash() != before_hash

    def test_snapshot_with_combined_parent_hash_applies(
        self, instance, tmp_path
    ):
        service = fresh_sharded(instance)
        delta = self.make_delta(service)
        parent_hash = service.content_hash()
        # compute the child hash on a scratch copy so the delta file can
        # name both states (the sharded parent is a combined hash)
        scratch = fresh_sharded(instance)
        scratch.apply_delta(delta)
        delta_file = save_delta_snapshot(
            tmp_path / "step.tppdelta", delta, parent_hash,
            scratch.content_hash(),
        )
        from repro.persistence import load_delta_snapshot

        outcome = service.apply_delta(load_delta_snapshot(delta_file))
        assert service.content_hash() == scratch.content_hash()
        assert outcome.constant == service.constant
        # replaying is refused: the parent hash moved on
        with pytest.raises(SnapshotMismatchError):
            service.apply_delta(load_delta_snapshot(delta_file))

    def test_explicit_constant_below_combined_refused(self, instance):
        service = fresh_sharded(instance)
        delta = self.make_delta(service)
        with pytest.raises(DeltaError):
            service.apply_delta(delta, constant=0)
        # the refused delta left every shard serving its old state
        assert service.deltas_applied == 0
        assert service.index_source == "built"

    def test_unsupported_payload_refused(self, instance):
        service = fresh_sharded(instance)
        with pytest.raises(ExperimentError, match="EdgeDelta"):
            service.apply_delta("not a delta")

    def test_delta_matches_unsharded_constant(self, instance, unsharded):
        service = fresh_sharded(instance)
        delta = self.make_delta(service)
        sharded_outcome = service.apply_delta(delta)
        _, unsharded_outcome = unsharded.problem.apply_delta(delta)
        del unsharded_outcome
        mutated, _ = unsharded.problem.apply_delta(delta)
        assert sharded_outcome.constant == mutated.constant
        assert service.pristine_similarity() == mutated.initial_similarity()
