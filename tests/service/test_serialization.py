"""Round-trip serialization tests for ProtectionResult and ProtectionRequest."""

import json

import pytest

from repro.core.ct import ct_greedy
from repro.core.model import ProtectionResult, TPPProblem
from repro.core.sgb import sgb_greedy
from repro.datasets.synthetic import small_social_graph
from repro.datasets.targets import sample_random_targets
from repro.service import ProtectionRequest, ProtectionService


@pytest.fixture
def problem():
    graph = small_social_graph(seed=1)
    targets = sample_random_targets(graph, 5, seed=0)
    return TPPProblem(graph, targets, motif="triangle")


def json_round_trip(payload):
    return json.loads(json.dumps(payload))


class TestProtectionResultRoundTrip:
    def test_sgb_result(self, problem):
        result = sgb_greedy(problem, 5)
        rebuilt = ProtectionResult.from_dict(json_round_trip(result.to_dict()))
        assert rebuilt == result
        assert rebuilt.protectors == result.protectors
        assert rebuilt.similarity_trace == result.similarity_trace

    def test_ct_result_with_division_and_allocation(self, problem):
        result = ct_greedy(problem, 6, budget_division="tbd")
        rebuilt = ProtectionResult.from_dict(json_round_trip(result.to_dict()))
        assert rebuilt == result
        assert rebuilt.budget_division == result.budget_division
        assert rebuilt.allocation == result.allocation
        # edge tuples (not lists) after the round trip
        for target, edges in rebuilt.allocation.items():
            assert isinstance(target, tuple)
            assert all(isinstance(edge, tuple) for edge in edges)

    def test_service_result_with_metadata(self, problem):
        service = ProtectionService(problem)
        result = service.solve(ProtectionRequest("WT-Greedy:TBD", 4, label="x"))
        rebuilt = ProtectionResult.from_dict(json_round_trip(result.to_dict()))
        assert rebuilt == result
        assert rebuilt.extra["service"]["label"] == "x"

    def test_derived_properties_survive(self, problem):
        result = sgb_greedy(problem, problem.initial_similarity() + 1)
        rebuilt = ProtectionResult.from_dict(result.to_dict())
        assert rebuilt.final_similarity == result.final_similarity
        assert rebuilt.fully_protected == result.fully_protected
        assert rebuilt.budget_used == result.budget_used


class TestReportingIntegration:
    def test_results_to_json_handles_protection_results(self, problem):
        from repro.experiments.reporting import results_to_json

        service = ProtectionService(problem)
        result = service.solve(ProtectionRequest("SGB-Greedy", 4))
        payload = json_round_trip(results_to_json(result))
        assert payload["kind"] == "protection_result"
        assert ProtectionResult.from_dict(payload) == result


class TestProtectionRequestRoundTrip:
    def test_minimal(self):
        request = ProtectionRequest("SGB-Greedy", 10)
        assert ProtectionRequest.from_dict(json_round_trip(request.to_dict())) == request

    def test_full(self, problem):
        request = ProtectionRequest(
            "CT-Greedy:TBD",
            12,
            engine="coverage-set",
            seed=9,
            budget_division={target: 3 for target in problem.targets},
            lazy=False,
            targets=problem.targets[:2],
            label="batch-7",
        )
        rebuilt = ProtectionRequest.from_dict(json_round_trip(request.to_dict()))
        assert rebuilt == request
        assert rebuilt.division_mapping() == request.division_mapping()

    def test_division_name_round_trip(self):
        request = ProtectionRequest("WT-Greedy:DBD", 4, budget_division="uniform")
        rebuilt = ProtectionRequest.from_dict(json_round_trip(request.to_dict()))
        assert rebuilt.budget_division == "uniform"
