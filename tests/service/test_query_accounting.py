"""Regression tests for ``queries_served`` accounting.

The counter used to be bumped at two separate sites depending on the code
path; the serving front's ``/stats`` endpoint made the drift visible.  The
contract now: exactly one increment per successfully answered query, at
exactly one site, and failed queries are never counted.
"""

import inspect

import pytest

import repro.service.service as service_module
from repro.core.model import TPPProblem
from repro.datasets.targets import sample_random_targets
from repro.exceptions import ExperimentError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.service import (
    ProtectionRequest,
    ProtectionService,
    register_method,
    unregister_method,
)


@pytest.fixture(scope="module")
def problem():
    graph = powerlaw_cluster_graph(180, 3, 0.5, seed=3)
    targets = sample_random_targets(graph, 5, seed=1)
    built = TPPProblem(graph, targets, motif="triangle")
    built.build_index()
    return built


@pytest.fixture
def service(problem):
    return ProtectionService(problem)


class TestAccounting:
    def test_one_increment_per_query(self, service):
        assert service.queries_served == 0
        service.solve(ProtectionRequest("SGB-Greedy", 3))
        assert service.queries_served == 1
        service.solve(ProtectionRequest("RD", 3, seed=2))
        assert service.queries_served == 2

    def test_subset_query_counts_once_on_the_parent(self, service, problem):
        subset = tuple(problem.targets[:3])
        service.solve(ProtectionRequest("SGB-Greedy", 3, targets=subset))
        assert service.queries_served == 1
        # the sub-session keeps its own (also single-increment) tally
        (subsession,) = service.cached_subset_sessions().values()
        assert subsession.queries_served == 1
        # a cache hit bumps both again, exactly once each
        service.solve(ProtectionRequest("SGB-Greedy", 4, targets=subset))
        assert service.queries_served == 2
        assert subsession.queries_served == 2

    def test_failed_query_not_counted(self, service):
        @register_method("Always-Fails", kind="greedy", order=997)
        def _run(problem, budget, engine, seed, **options):
            raise ExperimentError("deliberate failure")

        try:
            with pytest.raises(ExperimentError, match="deliberate failure"):
                service.solve(ProtectionRequest("Always-Fails", 3))
        finally:
            unregister_method("Always-Fails")
        assert service.queries_served == 0

    def test_invalid_request_not_counted(self, service):
        with pytest.raises(ExperimentError):
            service.solve(ProtectionRequest("SGB-Greedy", -1))  # negative budget
        with pytest.raises(ExperimentError):
            service.solve(ProtectionRequest("No-Such-Method", 3))
        assert service.queries_served == 0

    def test_solve_many_counts_every_request(self, service):
        requests = [ProtectionRequest("SGB-Greedy", budget) for budget in (2, 3, 4)]
        service.solve_many(requests)
        assert service.queries_served == 3
        service.solve_many(requests, workers=3, mode="thread")
        assert service.queries_served == 6

    def test_recount_engine_counted_like_any_other(self, service):
        service.solve(ProtectionRequest("SGB-Greedy", 2, engine="recount"))
        assert service.queries_served == 1


class TestSingleSite:
    def test_exactly_one_increment_site_in_source(self):
        source = inspect.getsource(service_module)
        assert source.count("_queries_served +=") == 1, (
            "queries_served must be bumped at exactly one site (in solve()); "
            "a second increment site reintroduces the double-counting bug"
        )
