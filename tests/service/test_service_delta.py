"""Tests for live delta application on a serving ProtectionService session.

Covers the PR's acceptance guarantees:

* a session keeps serving correct results before and after ``apply_delta``
  without a session rebuild — post-delta answers equal a fresh session
  built on the updated graph,
* copy-on-write — a solve captured before the swap is unaffected,
* subset sub-sessions are invalidated only for subsets that intersect the
  delta's changed targets,
* ``deltas_applied`` / ``index_source`` surface in the result metadata, and
* constant handling — auto-bump to the post-delta initial similarity, typed
  refusal of an explicit constant below it.
"""

import pytest

from repro.core.model import TPPProblem
from repro.datasets.targets import sample_random_targets
from repro.exceptions import DeltaError, ExperimentError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import canonical_edge
from repro.motifs.updates import EdgeDelta
from repro.service import ProtectionRequest, ProtectionService


@pytest.fixture
def graph():
    return powerlaw_cluster_graph(220, 3, 0.5, seed=3)


@pytest.fixture
def targets(graph):
    return sample_random_targets(graph, 6, seed=1)


@pytest.fixture
def service(graph, targets):
    return ProtectionService(graph, targets, motif="triangle")


def trace(result):
    return (result.protectors, result.similarity_trace)


def make_delta(service, count=2):
    """Delete ``count`` non-target phase-1 edges and insert two new ones."""
    phase1 = service.problem.phase1_graph
    target_set = {canonical_edge(*target) for target in service.problem.targets}
    deletions = [
        canonical_edge(*edge)
        for edge in sorted(phase1.edges())
        if canonical_edge(*edge) not in target_set
    ][:count]
    nodes = sorted(phase1.nodes())
    insertions = []
    for u in nodes:
        for v in nodes[::-1]:
            edge = canonical_edge(u, v)
            if (
                u != v
                and edge not in target_set
                and not phase1.has_edge(u, v)
                and edge not in insertions
            ):
                insertions.append(edge)
                break
        if len(insertions) == 2:
            break
    return EdgeDelta.from_edges(insert=insertions, delete=deletions)


def updated_graph_problem(service, delta):
    """A fresh problem on the delta's updated graph, same constant."""
    updated = service.problem.phase1_graph.copy()
    for u, v in delta.deleted:
        updated.remove_edge(u, v)
    for u, v in delta.inserted:
        updated.add_edge(u, v)
    updated.add_edges_from(service.problem.targets)
    return TPPProblem(
        updated,
        service.problem.targets,
        motif=service.problem.motif,
        constant=service.problem.constant,
    )


class TestApplyDelta:
    def test_serves_rebuild_identical_results_after_delta(self, service):
        request = ProtectionRequest("SGB-Greedy", 8)
        before = trace(service.solve(request))
        delta = make_delta(service)
        fresh_problem = updated_graph_problem(service, delta)
        outcome = service.apply_delta(delta)
        after = trace(service.solve(request))
        fresh = ProtectionService(fresh_problem)
        assert after == trace(fresh.solve(request))
        # the pre-delta answer is reproducible on a pre-delta session
        assert outcome.edges_deleted == 2 and outcome.edges_inserted == 2
        assert before != after or not outcome.changed_targets

    def test_deltas_applied_surfaces_in_metadata(self, service):
        request = ProtectionRequest("SGB-Greedy", 4)
        assert service.solve(request).extra["service"]["deltas_applied"] == 0
        assert service.deltas_applied == 0
        service.apply_delta(make_delta(service))
        result = service.solve(request)
        assert result.extra["service"]["deltas_applied"] == 1
        assert result.extra["service"]["index_source"] == "delta"
        assert service.deltas_applied == 1
        assert service.index_source == "delta"

    def test_net_noop_delta_keeps_session_state(self, service):
        request = ProtectionRequest("SGB-Greedy", 4)
        before = trace(service.solve(request))
        edge = make_delta(service).inserted[0]
        outcome = service.apply_delta(
            EdgeDelta((("insert", edge), ("delete", edge)))
        )
        assert outcome.changed_targets == ()
        assert trace(service.solve(request)) == before

    def test_constant_autobumps_but_never_shrinks(self, graph, targets):
        problem = TPPProblem(graph, targets, motif="triangle")
        service = ProtectionService(problem)
        original = service.problem.constant
        service.apply_delta(make_delta(service))
        assert service.problem.constant >= original
        initial = service.problem.build_index().initial_total_similarity()
        assert service.problem.constant >= initial

    def test_explicit_constant_below_similarity_refused(self, service):
        delta = make_delta(service)
        with pytest.raises(DeltaError):
            service.apply_delta(delta, constant=0)
        # the failed apply must not have half-swapped the session
        assert service.deltas_applied == 0
        assert service.index_source in ("built", "adopted")

    def test_non_delta_payload_refused(self, service):
        with pytest.raises(ExperimentError):
            service.apply_delta({"insert": [(1, 2)]})

    def test_subset_sessions_invalidate_only_changed_targets(self, service):
        targets = service.problem.targets
        subset_a = (targets[0],)
        subset_b = (targets[-1],)
        request_a = ProtectionRequest("SGB-Greedy", 3, targets=subset_a)
        request_b = ProtectionRequest("SGB-Greedy", 3, targets=subset_b)
        service.solve(request_a)
        service.solve(request_b)
        assert len(service._subsessions) == 2
        # a delta deleting an edge inside subset_a's instances only
        index = service.problem.build_index()
        edges_a = {
            index.candidate_edge_list()[position]
            for position in range(index.number_of_candidate_edges())
        }
        delta = None
        for edge in sorted(edges_a):
            outcome = index.apply_delta(EdgeDelta.deleting(edge))
            if outcome.changed_targets and set(outcome.changed_targets) <= set(
                subset_a
            ):
                delta = EdgeDelta.deleting(edge)
                break
        if delta is None:
            pytest.skip("no candidate edge touches only the first target")
        service.apply_delta(delta)
        keys = set(service._subsessions)
        assert frozenset(subset_b) in keys
        assert frozenset(subset_a) not in keys

    def test_second_delta_composes(self, service):
        request = ProtectionRequest("SGB-Greedy", 6)
        first = make_delta(service)
        service.apply_delta(first)
        second = EdgeDelta.deleting(first.inserted[0])
        service.apply_delta(second)
        assert service.deltas_applied == 2
        # an empty delta on the current session state reproduces its graph
        fresh = ProtectionService(updated_graph_problem(service, EdgeDelta(())))
        assert trace(service.solve(request)) == trace(fresh.solve(request))
