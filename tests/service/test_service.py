"""Tests for the ProtectionService session API.

Covers the PR's acceptance guarantees:

* determinism — repeated identical requests return identical protector
  sequences, and a solved query never mutates the session's pristine state,
* differential — service-path results equal legacy direct-call results on
  randomized instances for every method, and
* worker independence — serial, threaded and process fan-out produce
  byte-identical protector traces.
"""

import pytest

from repro.core.baselines import random_deletion, random_target_subgraph_deletion
from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy
from repro.datasets.targets import sample_random_targets
from repro.exceptions import ExperimentError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import Graph, edge_sort_key
from repro.service import ProtectionRequest, ProtectionService, method_names


@pytest.fixture
def graph():
    return powerlaw_cluster_graph(220, 3, 0.5, seed=3)


@pytest.fixture
def targets(graph):
    return sample_random_targets(graph, 6, seed=1)


@pytest.fixture
def service(graph, targets):
    return ProtectionService(graph, targets, motif="triangle")


def trace(result):
    return (result.protectors, result.similarity_trace)


class TestConstruction:
    def test_from_graph_and_from_problem_agree(self, graph, targets):
        from_graph = ProtectionService(graph, targets, motif="triangle")
        from_problem = ProtectionService(TPPProblem(graph, targets, motif="triangle"))
        request = ProtectionRequest("SGB-Greedy", 5)
        assert trace(from_graph.solve(request)) == trace(from_problem.solve(request))

    def test_graph_without_targets_rejected(self, graph):
        with pytest.raises(ExperimentError):
            ProtectionService(graph)

    def test_session_reuses_problem_index(self, graph, targets):
        problem = TPPProblem(graph, targets, motif="triangle")
        index = problem.build_index()
        session = ProtectionService(problem)
        assert session.index is index

    def test_build_workers_session_serves_identical_results(self, graph, targets):
        serial = ProtectionService(graph, targets, motif="triangle")
        parallel = ProtectionService(
            graph, targets, motif="triangle", build_workers=2
        )
        assert parallel.build_workers == 2
        assert serial.build_workers is None
        request = ProtectionRequest("CT-Greedy:TBD", 6)
        assert trace(parallel.solve(request)) == trace(serial.solve(request))
        # the parallel-built index is bit-identical, not merely equivalent
        assert (
            parallel.index._inst_edge_ids.tobytes()
            == serial.index._inst_edge_ids.tobytes()
        )
        assert (
            parallel.index._edge_inst_ids.tobytes()
            == serial.index._edge_inst_ids.tobytes()
        )

    def test_subset_subsession_inherits_build_workers(self, graph, targets):
        session = ProtectionService(
            graph, targets, motif="triangle", build_workers=2
        )
        subset = tuple(sorted(targets, key=edge_sort_key)[:2])
        session.solve(ProtectionRequest("SGB-Greedy", 3, targets=subset))
        (sub_session,) = session._subsessions.values()
        assert sub_session.build_workers == 2


class TestDeterminismAndIsolation:
    def test_repeated_solve_identical(self, service):
        """Same-session repeated solve of an identical request is identical."""
        for method in method_names():
            request = ProtectionRequest(method, 6, seed=2)
            first = service.solve(request)
            second = service.solve(request)
            assert trace(first) == trace(second), method

    def test_solved_queries_never_mutate_pristine_state(self, service):
        initial = service.pristine_similarity()
        for method in method_names():
            result = service.solve(ProtectionRequest(method, 8, seed=1))
            assert result.budget_used >= 0
        assert service.pristine_deletions() == ()
        assert service.pristine_similarity() == initial
        # fresh queries still see the untouched instance
        again = service.solve(ProtectionRequest("SGB-Greedy", 1))
        assert again.initial_similarity == initial

    def test_queries_served_counts(self, service):
        before = service.queries_served
        service.solve_many([ProtectionRequest("SGB-Greedy", k) for k in (1, 2, 3)])
        assert service.queries_served == before + 3


class TestServiceMetadata:
    def test_result_carries_request_echo_and_timings(self, service):
        request = ProtectionRequest("CT-Greedy:TBD", 4, label="sweep-0")
        result = service.solve(request)
        meta = result.extra["service"]
        assert meta["request"] == request.to_dict()
        assert meta["reused_index"] is True
        assert meta["label"] == "sweep-0"
        assert meta["build_seconds"] >= 0.0
        assert meta["solve_seconds"] >= 0.0

    def test_recount_engine_reports_no_index_reuse(self, service):
        result = service.solve(ProtectionRequest("SGB-Greedy", 3, engine="recount"))
        assert result.extra["service"]["reused_index"] is False
        assert result.algorithm.startswith("SGB-Greedy")

    def test_baselines_served_from_kernel_even_for_recount_requests(self, service):
        """A recount-engine baseline request must not build a recount engine."""
        recount = service.solve(ProtectionRequest("RD", 5, seed=3, engine="recount"))
        coverage = service.solve(ProtectionRequest("RD", 5, seed=3))
        assert trace(recount) == trace(coverage)
        # the baseline traced deletions on the shared kernel state
        assert recount.extra["service"]["reused_index"] is True

    def test_unknown_method_and_engine_fail_with_names(self, service):
        with pytest.raises(ExperimentError, match="SGB-Greedy"):
            service.solve(ProtectionRequest("Oracle", 3))
        with pytest.raises(ExperimentError, match="coverage"):
            service.solve(ProtectionRequest("SGB-Greedy", 3, engine="quantum"))


class TestDifferentialAgainstLegacy:
    """Service-path results equal legacy direct calls on randomized instances."""

    @pytest.mark.parametrize("instance_seed", [0, 1, 2])
    def test_all_methods_match_direct_calls(self, instance_seed):
        graph = powerlaw_cluster_graph(150 + 30 * instance_seed, 3, 0.4, seed=instance_seed)
        targets = sample_random_targets(graph, 5, seed=instance_seed)
        service = ProtectionService(graph, targets, motif="triangle")
        problem = TPPProblem(graph, targets, motif="triangle")
        budget = 7
        legacy = {
            "SGB-Greedy": sgb_greedy(problem, budget),
            "CT-Greedy:DBD": ct_greedy(problem, budget, budget_division="dbd"),
            "WT-Greedy:DBD": wt_greedy(problem, budget, budget_division="dbd"),
            "CT-Greedy:TBD": ct_greedy(problem, budget, budget_division="tbd"),
            "WT-Greedy:TBD": wt_greedy(problem, budget, budget_division="tbd"),
            "RD": random_deletion(problem, budget, seed=instance_seed),
            "RDT": random_target_subgraph_deletion(problem, budget, seed=instance_seed),
        }
        for method, expected in legacy.items():
            served = service.solve(
                ProtectionRequest(method, budget, seed=instance_seed)
            )
            assert trace(served) == trace(expected), method
            assert served.algorithm == expected.algorithm

    def test_engine_variants_match(self, service, graph, targets):
        problem = TPPProblem(graph, targets, motif="triangle")
        for engine in ("coverage", "coverage-set", "recount"):
            served = service.solve(ProtectionRequest("SGB-Greedy", 5, engine=engine))
            expected = sgb_greedy(problem, 5, engine=engine)
            assert trace(served) == trace(expected), engine

    def test_explicit_budget_division_override(self, service, graph, targets):
        problem = TPPProblem(graph, targets, motif="triangle")
        division = {target: 2 for target in problem.targets}
        budget = sum(division.values())
        served = service.solve(
            ProtectionRequest("CT-Greedy:TBD", budget, budget_division=division)
        )
        expected = ct_greedy(problem, budget, budget_division=division)
        assert trace(served) == trace(expected)


class TestSolveMany:
    def _batch(self):
        # SGB / CT / WT / RD across several budgets, as the issue requires
        return [
            ProtectionRequest(method, budget, seed=seed)
            for seed, method in enumerate(
                ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:DBD", "RD", "RDT")
            )
            for budget in (3, 6)
        ]

    def test_results_independent_of_workers(self, service):
        batch = self._batch()
        serial = service.solve_many(batch)
        threaded = service.solve_many(batch, workers=3)
        processed = service.solve_many(batch, workers=2, mode="process")
        assert [trace(r) for r in serial] == [trace(r) for r in threaded]
        assert [trace(r) for r in serial] == [trace(r) for r in processed]
        # byte-identical traces, same algorithms, same order
        assert [r.algorithm for r in serial] == [r.algorithm for r in processed]

    def test_invalid_mode_rejected(self, service):
        with pytest.raises(ExperimentError):
            service.solve_many([ProtectionRequest("SGB-Greedy", 2)], workers=2, mode="warp")

    def test_empty_batch(self, service):
        assert service.solve_many([]) == []


def subset_problem(service, subset, constant=None):
    """The sub-problem a subset query answers: every session target stays
    hidden (the non-subset ones are removed from the graph, per the paper's
    phase 1), targets in the library-wide sort order, parent's constant."""
    subset = tuple(sorted(subset, key=edge_sort_key))
    rest = [t for t in service.targets if t not in set(subset)]
    return TPPProblem(
        service.problem.graph.without_edges(rest),
        subset,
        motif="triangle",
        constant=service.problem.constant if constant is None else constant,
    )


class TestTargetSubsets:
    def test_subset_query_equals_subset_problem(self, service, targets):
        subset = tuple(targets[:3])
        served = service.solve(ProtectionRequest("SGB-Greedy", 5, targets=subset))
        expected = sgb_greedy(subset_problem(service, subset), 5)
        assert trace(served) == trace(expected)

    def test_subset_released_graph_keeps_other_targets_hidden(self, service, targets):
        """The non-subset sensitive links must never reach the released graph."""
        subset = tuple(targets[:3])
        service.solve(ProtectionRequest("SGB-Greedy", 4, targets=subset))
        sub = next(iter(service._subsessions.values()))
        for target in service.targets:
            assert not sub.problem.phase1_graph.has_edge(*target)

    def test_adjacent_targets_subset_query(self):
        """Regression: subset queries on adjacent targets raised
        InvalidTargetError — the sub-problem resurrected the other target
        edges, pushing its initial similarity above the inherited C."""
        graph = Graph(
            [("a", "b"), ("a", "c"), ("b", "c"), ("a", "d"), ("b", "d")]
        )
        session = ProtectionService(
            graph, [("a", "b"), ("a", "c"), ("b", "c")], motif="triangle"
        )
        result = session.solve(
            ProtectionRequest("SGB-Greedy", 2, targets=(("a", "b"),))
        )
        # the only surviving instance of ("a", "b") is the path a-d-b
        assert result.initial_similarity == 1
        assert result.fully_protected

    def test_subset_order_insensitive(self, service, targets):
        subset = tuple(targets[:3])
        forward = service.solve(ProtectionRequest("WT-Greedy:TBD", 5, targets=subset))
        backward = service.solve(
            ProtectionRequest("WT-Greedy:TBD", 5, targets=subset[::-1])
        )
        assert trace(forward) == trace(backward)
        # permutations share one cached sub-session
        assert len(service._subsessions) == 1
        assert backward.extra["service"]["reused_index"] is True

    def test_queries_served_counts_subset_queries(self, service, targets):
        before = service.queries_served
        subset = tuple(targets[:2])
        service.solve(ProtectionRequest("SGB-Greedy", 2, targets=subset))
        service.solve(ProtectionRequest("SGB-Greedy", 3, targets=subset))
        assert service.queries_served == before + 2

    def test_subset_cache_is_lru_bounded(self, graph, targets):
        session = ProtectionService(
            graph, targets, motif="triangle", max_cached_subsets=2
        )
        subsets = [tuple(session.targets[i : i + 2]) for i in range(3)]
        for subset in subsets:
            session.solve(ProtectionRequest("SGB-Greedy", 2, targets=subset))
        assert len(session._subsessions) == 2
        # the two most recent subsets survived; the first was evicted
        kept = session.solve(ProtectionRequest("SGB-Greedy", 2, targets=subsets[2]))
        assert kept.extra["service"]["reused_index"] is True
        evicted = session.solve(ProtectionRequest("SGB-Greedy", 2, targets=subsets[0]))
        assert evicted.extra["service"]["reused_index"] is False

    def test_invalid_subset_cache_bound_rejected(self, graph, targets):
        with pytest.raises(ExperimentError):
            ProtectionService(graph, targets, max_cached_subsets=0)

    def test_concurrent_first_subset_queries_share_one_session(self, service, targets):
        """Concurrent first queries on a fresh subset enumerate it once."""
        subset = tuple(targets[:3])
        batch = [
            ProtectionRequest(method, 3, targets=subset)
            for method in ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD", "RD")
        ]
        results = service.solve_many(batch, workers=4)
        assert len(service._subsessions) == 1
        assert service._subset_builders == {}
        serial = [service.solve(request) for request in batch]
        assert [trace(r) for r in results] == [trace(r) for r in serial]

    def test_subset_sessions_are_cached(self, service, targets):
        subset = tuple(targets[:2])
        service.solve(ProtectionRequest("SGB-Greedy", 2, targets=subset))
        assert len(service._subsessions) == 1
        cached = next(iter(service._subsessions.values()))
        service.solve(ProtectionRequest("SGB-Greedy", 3, targets=subset))
        assert len(service._subsessions) == 1
        assert next(iter(service._subsessions.values())) is cached

    def test_subset_inherits_session_constant(self, graph, targets):
        """Sub-sessions must score Δ_t^p with the parent session's C."""
        full_problem = TPPProblem(graph, targets, motif="triangle")
        constant = full_problem.initial_similarity() + 50
        session = ProtectionService(graph, targets, motif="triangle", constant=constant)
        subset = tuple(targets[:3])
        served = session.solve(ProtectionRequest("CT-Greedy:TBD", 5, targets=subset))
        expected = ct_greedy(
            subset_problem(session, subset, constant=constant),
            5,
            budget_division="tbd",
        )
        assert trace(served) == trace(expected)

    def test_subset_metadata_truthful(self, service, targets):
        subset = tuple(targets[:3])
        first = service.solve(ProtectionRequest("SGB-Greedy", 4, targets=subset))
        second = service.solve(ProtectionRequest("SGB-Greedy", 4, targets=subset))
        # the first subset query enumerated a fresh sub-session
        assert first.extra["service"]["reused_index"] is False
        assert second.extra["service"]["reused_index"] is True
        # the request echo records the subset the result answered
        echoed = first.extra["service"]["request"]
        assert [tuple(edge) for edge in echoed["targets"]] == list(subset)

    def test_unknown_subset_target_rejected(self, service):
        with pytest.raises(ExperimentError):
            service.solve(
                ProtectionRequest("SGB-Greedy", 2, targets=(("no", "edge"),))
            )

    def test_duplicate_subset_targets_rejected_cleanly(self, service, targets):
        """A duplicated link (e.g. both orientations) must fail with a clear
        error, not a deep InvalidTargetError, and must leak no builder lock."""
        u, v = targets[0]
        with pytest.raises(ExperimentError, match="duplicate"):
            service.solve(
                ProtectionRequest("SGB-Greedy", 2, targets=((u, v), (v, u)))
            )
        assert service._subset_builders == {}
        assert len(service._subsessions) == 0

    def test_full_set_permutation_served_by_main_session(self, service):
        """Naming every session target (any order/orientation) is not a
        subset query — no duplicate sub-session may be enumerated."""
        full = tuple((v, u) for (u, v) in reversed(service.targets))
        canonical = service.solve(ProtectionRequest("SGB-Greedy", 3))
        permuted = service.solve(ProtectionRequest("SGB-Greedy", 3, targets=full))
        assert trace(permuted) == trace(canonical)
        assert len(service._subsessions) == 0
