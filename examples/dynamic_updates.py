"""Dynamic graphs: apply edge deltas to a live session, never rebuild.

Real graphs do not stand still — links appear and disappear while a
protection session is serving queries.  Rebuilding the whole index for a
ten-edge change re-enumerates every target's motif instances; the delta
path (:meth:`ProtectionService.apply_delta`) splices the update into the
built index in time proportional to the *touched* motifs and swaps it in
copy-on-write, bit-identical to a from-scratch rebuild on the updated
graph.

This example:

1. builds a session and answers a query,
2. applies a small :class:`~repro.EdgeDelta` (deletions + insertions) and
   times it against a from-scratch rebuild on the updated graph,
3. checks the updated session's answers equal the rebuilt session's,
4. records the update as a delta snapshot tied to the parent state's
   content hash, and
5. shows the mismatched-parent guard refusing a stale delta file.

Run with::

    python examples/dynamic_updates.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    EdgeDelta,
    ProtectionRequest,
    ProtectionService,
    TPPProblem,
    load_delta_snapshot,
    save_delta_snapshot,
)
from repro.datasets import arenas_email_like, sample_random_targets
from repro.exceptions import SnapshotMismatchError
from repro.graphs.graph import canonical_edge

BUDGET = 30


def pick_delta(service: ProtectionService) -> EdgeDelta:
    """Two deletions of existing non-target edges plus two fresh insertions."""
    phase1 = service.problem.phase1_graph
    target_set = {canonical_edge(*target) for target in service.problem.targets}
    deletions = [
        edge
        for edge in sorted(phase1.edges())
        if canonical_edge(*edge) not in target_set
    ][:2]
    nodes = sorted(phase1.nodes())
    insertions = []
    for u in nodes:
        for v in reversed(nodes):
            edge = canonical_edge(u, v)
            if (
                u != v
                and edge not in target_set
                and not phase1.has_edge(u, v)
                and edge not in insertions
            ):
                insertions.append(edge)
                break
        if len(insertions) == 2:
            break
    return EdgeDelta.from_edges(insert=insertions, delete=deletions)


def main() -> None:
    # 1. build a session and answer a query --------------------------------
    graph = arenas_email_like(nodes=600, seed=1)
    targets = sample_random_targets(graph, count=10, seed=0)
    service = ProtectionService(graph, targets, motif="triangle")
    request = ProtectionRequest("SGB-Greedy", BUDGET)
    before = service.solve(request)
    print(
        f"session built: {len(targets)} targets, first answer uses "
        f"{len(before.protectors)} protectors "
        f"(index_source={before.extra['service']['index_source']})"
    )

    # 2. the graph changes: apply the delta, time it vs a rebuild ----------
    parent_index = service.problem.build_index()  # pre-delta state, for step 4
    delta = pick_delta(service)
    started = time.perf_counter()
    outcome = service.apply_delta(delta)
    delta_seconds = time.perf_counter() - started

    updated = graph.copy()
    for u, v in delta.deleted:
        updated.remove_edge(u, v)
    for u, v in delta.inserted:
        updated.add_edge(u, v)
    started = time.perf_counter()
    rebuilt = ProtectionService(
        TPPProblem(
            updated, targets, motif="triangle", constant=service.problem.constant
        )
    )
    rebuilt_answer = rebuilt.solve(request)
    rebuild_seconds = time.perf_counter() - started
    print(
        f"applied {outcome.edges_inserted} insert(s) / "
        f"{outcome.edges_deleted} delete(s) in {delta_seconds:.4f}s — "
        f"{len(outcome.changed_targets)} target(s) changed, "
        f"{outcome.targets_reenumerated} re-enumerated; a from-scratch "
        f"rebuild took {rebuild_seconds:.4f}s "
        f"({rebuild_seconds / max(delta_seconds, 1e-9):.1f}x slower)"
    )

    # 3. the updated session serves exactly what a rebuild would -----------
    after = service.solve(request)
    assert after.protectors == rebuilt_answer.protectors, "traces must agree"
    assert after.similarity_trace == rebuilt_answer.similarity_trace
    print(
        f"updated session matches the rebuild: {len(after.protectors)} "
        f"protectors, s {after.initial_similarity} -> {after.final_similarity} "
        f"(index_source={after.extra['service']['index_source']}, "
        f"deltas_applied={after.extra['service']['deltas_applied']})"
    )

    # 4. persist the update as a small diff tied to its parent state -------
    path = Path(tempfile.mkdtemp(prefix="tpp_delta_")) / "update-0001.tppdelta"
    save_delta_snapshot(path, delta, parent_index, outcome.index)
    print(f"delta recorded: {path} ({path.stat().st_size} bytes)")

    # 5. a stale delta is refused, never silently replayed -----------------
    snapshot = load_delta_snapshot(path)
    try:
        service.apply_delta(snapshot)  # session has moved past the parent
    except SnapshotMismatchError as error:
        print(f"stale delta refused: {error}")
    else:
        raise AssertionError("a mismatched parent state must be refused")


if __name__ == "__main__":
    main()
