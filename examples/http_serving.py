"""Serving over HTTP: one index, a replica fleet, coalesced duplicates.

The in-process session answers queries for one process; a deployment
wants many replicas answering the *same* index, refreshed without
downtime.  The serving front (:mod:`repro.server`) does that on stdlib
asyncio only:

1. builds a session, publishes its index snapshot to the server's
   artifact store — addressed by content hash — and points ``latest``
   at it,
2. cold-starts a replica session *from the published hash over HTTP*
   and checks its answers are byte-identical to the origin's,
3. fires a burst of identical requests and shows they coalesce onto a
   single executor solve (every caller gets the same payload; exactly
   one reports ``coalesced: false``),
4. hot-reloads the server with a ``*.tppdelta`` file and shows the
   content hash advance to the delta's result hash, and
5. shows the stale-delta guard refusing a replay with the live session
   untouched.

Run with::

    python examples/http_serving.py
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import (
    EdgeDelta,
    ProtectionRequest,
    ProtectionService,
    TPPProblem,
    save_delta_snapshot,
)
from repro.datasets import arenas_email_like, sample_random_targets
from repro.exceptions import ServerError
from repro.graphs.graph import canonical_edge
from repro.persistence import index_content_hash
from repro.server import (
    ArtifactStore,
    ProtectionServer,
    ServingClient,
    serve_in_background,
)

BUDGET = 20


def pick_delta(service: ProtectionService) -> EdgeDelta:
    """Two deletions of existing non-target edges (a small, valid update)."""
    phase1 = service.problem.phase1_graph
    target_set = {canonical_edge(*target) for target in service.problem.targets}
    deletions = [
        canonical_edge(*edge)
        for edge in sorted(phase1.edges())
        if canonical_edge(*edge) not in target_set
    ][:2]
    return EdgeDelta.from_edges(delete=deletions)


def main() -> None:
    graph = arenas_email_like(seed=11)
    targets = sample_random_targets(graph, 12, seed=3)
    problem = TPPProblem(graph, targets, motif="triangle")
    origin = ProtectionService(problem)
    request = ProtectionRequest("SGB-Greedy", BUDGET)

    with tempfile.TemporaryDirectory(prefix="tpp-serving-") as scratch:
        scratch_dir = Path(scratch)
        server = ProtectionServer(
            origin,
            store=ArtifactStore(scratch_dir / "store"),
            solver_threads=4,
        )
        with serve_in_background(server) as handle:
            client = ServingClient(handle.url, timeout=300.0)
            print(f"serving on {handle.url}")
            print(f"health: {client.health()}")

            # -- 1. publish the origin's index, hash-addressed ----------
            snapshot = problem.save_index(scratch_dir / "origin.tppsnap")
            published = client.publish_file(snapshot)
            content_hash = str(published["content_hash"])
            client.set_latest(content_hash)
            print(f"published snapshot as {content_hash[:16]}… (latest)")

            # -- 2. replica cold-start from the published hash ----------
            replica = client.cold_start(
                content_hash, cache_dir=scratch_dir / "replica-cache"
            )
            origin_answer = client.solve(request)
            replica_answer = replica.solve(request)
            identical = (
                origin_answer.protectors == replica_answer.protectors
                and origin_answer.similarity_trace
                == replica_answer.similarity_trace
            )
            print(
                f"replica cold-started from hash "
                f"(index_source={replica.index_source}); byte-identical "
                f"answers: {identical}"
            )
            assert identical, "replica answers diverged from the origin"

            # -- 3. identical concurrent requests coalesce --------------
            # the recount engine is the paper's deliberately slow naive
            # baseline — slow enough that the burst overlaps one solve
            expensive = ProtectionRequest("SGB-Greedy", 1, engine="recount")
            solves_before = client.stats()["solves_executed"]
            with ThreadPoolExecutor(max_workers=4) as pool:
                payloads = list(
                    pool.map(lambda _: client.solve_payload(expensive), range(4))
                )
            solves_after = client.stats()["solves_executed"]
            flags = sorted(p["extra"]["server"]["coalesced"] for p in payloads)
            print(
                f"burst of 4 identical requests: "
                f"{solves_after - solves_before} solve(s) executed, "
                f"coalesced flags {flags}"
            )

            # -- 4. hot-reload via a delta file -------------------------
            delta = pick_delta(origin)
            _, outcome = problem.apply_delta(delta)
            delta_file = save_delta_snapshot(
                scratch_dir / "update.tppdelta",
                delta,
                problem.build_index(),
                outcome.index,
            )
            reloaded = client.reload(delta=delta_file)
            result_hash = index_content_hash(outcome.index)
            print(
                f"delta reload: {reloaded['action']}, content hash now "
                f"{str(reloaded['content_hash'])[:16]}… "
                f"(expected {result_hash[:16]}…)"
            )
            assert reloaded["content_hash"] == result_hash

            # -- 5. the stale-delta guard -------------------------------
            try:
                client.reload(delta=delta_file)
                raise AssertionError("stale delta replay must be refused")
            except ServerError as error:
                print(f"stale delta replay refused: {error}")
            assert client.stats()["content_hash"] == result_hash
            print(f"final stats: queries_served={client.stats()['queries_served']}")


if __name__ == "__main__":
    main()
