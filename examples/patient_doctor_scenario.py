"""The paper's motivating scenario: hide a patient's links to their doctors.

One user ("the patient") wants a few of their own relationships — say the
links to an oncologist and to a support group — to stay hidden even after
the social graph is released.  Deleting those links is not enough: an
attacker who knows how social graphs form can re-infer them from triangles
and rectangles.  This example:

1. picks an ego node and treats several of its incident links as targets,
2. shows how exposed those links are to common-neighbor prediction before
   any protection,
3. runs the budgeted TPP protection, and
4. shows the attacker's view after the release.

Run with::

    python examples/patient_doctor_scenario.py
"""

from __future__ import annotations

from repro import AttackSimulator, ProtectionRequest, ProtectionService
from repro.datasets import arenas_email_like, sample_ego_targets
from repro.experiments import format_table


def describe_attack(report, title: str) -> None:
    print(f"\n{title}")
    print(f"  attack AUC (1.0 = targets always outrank non-edges): {report.auc:.3f}")
    print(f"  exposed targets (score > 0): {len(report.exposed_targets)}")
    for target, score in sorted(report.target_scores.items(), key=str):
        print(f"    {target}: prediction score {score:.2f}")


def main() -> None:
    graph = arenas_email_like(nodes=600, seed=2)

    # the "patient": a moderately connected user hiding 5 of their links
    targets = sample_ego_targets(graph, count=5, seed=1)
    ego = targets[0][0] if all(t[0] == targets[0][0] for t in targets) else targets[0][1]
    print(f"ego node {ego!r} hides {len(targets)} of its {graph.degree(ego)} links")

    service = ProtectionService(graph, targets, motif="triangle")
    problem = service.problem
    print(f"surviving target subgraphs after merely deleting the links: "
          f"{service.pristine_similarity()}")

    attacker = AttackSimulator("common_neighbors", negative_samples=300, seed=0)
    before = attacker.run(problem.phase1_graph, targets)
    describe_attack(before, "attacker's view after naive deletion (phase 1 only)")

    # budgeted protection, served from the session's shared index
    result = service.solve(
        ProtectionRequest("SGB-Greedy", budget=service.pristine_similarity() + 1)
    )
    released = result.released_graph(problem)
    after = attacker.run(released, targets)
    describe_attack(after, f"attacker's view after TPP ({result.budget_used} protector deletions)")

    # the protection also defends every other triangle-based index
    rows = []
    for predictor in ("jaccard", "adamic_adar", "resource_allocation", "salton"):
        report = AttackSimulator(predictor, negative_samples=300, seed=0).run(
            released, targets
        )
        rows.append((predictor, f"{report.auc:.3f}", len(report.exposed_targets)))
    print()
    print(format_table(["predictor", "AUC on release", "exposed targets"], rows))
    print("\nevery triangle-based index scores 0 for every hidden link: the "
          "patient's sensitive relationships are no longer inferable.")


if __name__ == "__main__":
    main()
