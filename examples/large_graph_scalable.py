"""Scalable protection on a DBLP-scale co-authorship graph.

The paper's non-scalable greedy algorithms "didn't finish in one week" on the
DBLP graph; the scalable -R implementations (Lemma 5) and the lazy (CELF)
greedy finish in seconds to minutes.  This example:

1. generates a DBLP-like co-authorship graph (tens of thousands of nodes),
2. protects 50 randomly sampled sensitive links under each motif,
3. reports running time, deletions used, and the resulting utility loss.

Run with (a few minutes for the default 20k-node graph)::

    python examples/large_graph_scalable.py [nodes]
"""

from __future__ import annotations

import sys
import time

from repro import ProtectionRequest, ProtectionService
from repro.datasets import dblp_like, sample_random_targets
from repro.experiments import format_table
from repro.utility import compare_graphs


def main(nodes: int = 20_000) -> None:
    start = time.perf_counter()
    graph = dblp_like(nodes=nodes, seed=7)
    print(
        f"DBLP-like graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges "
        f"(generated in {time.perf_counter() - start:.1f}s)"
    )

    targets = sample_random_targets(graph, count=50, seed=3)
    rows = []
    released_by_motif = {}
    for motif in ("triangle", "rectangle", "rectri"):
        # one session per motif: enumeration happens once at session build,
        # the selection query then runs on a copy of the pristine state
        service = ProtectionService(graph, targets, motif=motif)
        initial = service.pristine_similarity()

        result = service.solve(
            ProtectionRequest("SGB-Greedy", budget=initial + 1, lazy=True)
        )
        released_by_motif[motif] = result.released_graph(service.problem)
        rows.append(
            (
                motif,
                initial,
                result.budget_used,
                "yes" if result.fully_protected else "no",
                f"{service.build_seconds:.1f}s",
                f"{result.runtime_seconds:.1f}s",
            )
        )
    print()
    print(
        format_table(
            [
                "motif",
                "target subgraphs",
                "protectors deleted",
                "fully protected",
                "enumeration",
                "selection",
            ],
            rows,
        )
    )

    # utility loss of the triangle-protected release, scalable metrics only
    report = compare_graphs(
        graph, released_by_motif["triangle"], metrics=("clust", "cn")
    )
    print()
    print(f"utility loss of the triangle-protected release: {report.summary()}")


if __name__ == "__main__":
    requested = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    main(requested)
