"""Quickstart: protect a handful of sensitive links in a social graph.

Runs the full TPP workflow on a synthetic Arenas-email-like graph:

1. sample target links that must stay hidden,
2. select protector links with the three greedy algorithms,
3. verify full protection and compare the algorithms, and
4. measure the utility cost of the release.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import TPPProblem, ct_greedy, sgb_greedy, verify_result, wt_greedy
from repro.datasets import arenas_email_like, sample_random_targets
from repro.experiments import format_table
from repro.utility import compare_graphs


def main() -> None:
    # 1. the social graph and the sensitive target links -------------------
    graph = arenas_email_like(nodes=600, seed=1)
    targets = sample_random_targets(graph, count=10, seed=0)
    print(f"graph: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges")
    print(f"targets to hide: {len(targets)} links")

    # 2. build the TPP problem (phase 1 removes the targets) ---------------
    problem = TPPProblem(graph, targets, motif="triangle")
    print(f"target subgraphs an adversary could exploit: {problem.initial_similarity()}")

    # 3. run the three greedy protector selections --------------------------
    budget = 40
    results = [
        sgb_greedy(problem, budget),
        ct_greedy(problem, budget, budget_division="tbd"),
        wt_greedy(problem, budget, budget_division="tbd"),
    ]

    rows = []
    for result in results:
        assert verify_result(problem, result), "incremental trace must match recount"
        rows.append(
            (
                result.algorithm,
                result.budget_used,
                result.initial_similarity,
                result.final_similarity,
                "yes" if result.fully_protected else "no",
                f"{result.runtime_seconds:.3f}s",
            )
        )
    print()
    print(
        format_table(
            ["algorithm", "deletions", "s(∅,T)", "s(P,T)", "fully protected", "time"],
            rows,
        )
    )

    # 4. utility cost of the best release -----------------------------------
    best = results[0]
    released = best.released_graph(problem)
    report = compare_graphs(graph, released, metrics=("clust", "cn", "r"))
    print()
    print(f"utility impact of {best.algorithm}: {report.summary()}")
    for metric, original, new, loss in report.as_rows():
        print(f"  {metric:>6}: {original:.4f} -> {new:.4f}  (loss {100 * loss:.2f}%)")


if __name__ == "__main__":
    main()
