"""Quickstart: protect a handful of sensitive links in a social graph.

Runs the full TPP workflow on a synthetic Arenas-email-like graph through
the session API — the target-subgraph index is built once and every query
runs on a copy of the session's pristine coverage state:

1. sample target links that must stay hidden,
2. open a ProtectionService session for (graph, targets, motif),
3. solve the three greedy selections as one batch of typed requests,
4. verify full protection and compare the algorithms, and
5. measure the utility cost of the release.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ProtectionRequest, ProtectionService, verify_result
from repro.datasets import arenas_email_like, sample_random_targets
from repro.experiments import format_table
from repro.utility import compare_graphs


def main() -> None:
    # 1. the social graph and the sensitive target links -------------------
    graph = arenas_email_like(nodes=600, seed=1)
    targets = sample_random_targets(graph, count=10, seed=0)
    print(f"graph: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges")
    print(f"targets to hide: {len(targets)} links")

    # 2. open a protection session (phase 1 removes the targets, the index
    #    is enumerated exactly once) ----------------------------------------
    service = ProtectionService(graph, targets, motif="triangle")
    print(
        f"target subgraphs an adversary could exploit: {service.pristine_similarity()} "
        f"(index built in {service.build_seconds:.3f}s)"
    )

    # 3. run the three greedy protector selections as one request batch -----
    budget = 40
    requests = [
        ProtectionRequest("SGB-Greedy", budget),
        ProtectionRequest("CT-Greedy:TBD", budget),
        ProtectionRequest("WT-Greedy:TBD", budget),
    ]
    results = service.solve_many(requests, workers=2)

    rows = []
    for result in results:
        assert verify_result(service.problem, result), "trace must match recount"
        service_meta = result.extra["service"]
        assert service_meta["reused_index"], "coverage queries reuse the session index"
        rows.append(
            (
                result.algorithm,
                result.budget_used,
                result.initial_similarity,
                result.final_similarity,
                "yes" if result.fully_protected else "no",
                f"{service_meta['solve_seconds']:.3f}s",
            )
        )
    print()
    print(
        format_table(
            ["algorithm", "deletions", "s(∅,T)", "s(P,T)", "fully protected", "time"],
            rows,
        )
    )

    # 4. the session stayed pristine: repeated queries are deterministic ----
    repeat = service.solve(requests[0])
    assert repeat.protectors == results[0].protectors, "same request, same answer"
    assert service.pristine_deletions() == (), "queries never mutate the session"
    print(f"\nsession answered {service.queries_served} queries from one index")

    # 5. utility cost of the best release -----------------------------------
    best = results[0]
    released = best.released_graph(service.problem)
    report = compare_graphs(graph, released, metrics=("clust", "cn", "r"))
    print()
    print(f"utility impact of {best.algorithm}: {report.summary()}")
    for metric, original, new, loss in report.as_rows():
        print(f"  {metric:>6}: {original:.4f} -> {new:.4f}  (loss {100 * loss:.2f}%)")


if __name__ == "__main__":
    main()
