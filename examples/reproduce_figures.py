"""Regenerate any figure or table of the paper's evaluation section.

Thin wrapper around :mod:`repro.experiments.runner` that prints the same
rows/series the paper plots.  ``quick`` scale finishes in minutes on a
laptop; ``paper`` scale uses the paper's parameters (larger graphs, more
repetitions) and can take hours for the runtime figures.

Run with::

    python examples/reproduce_figures.py fig3 --scale quick
    python examples/reproduce_figures.py table3 --scale quick
    python examples/reproduce_figures.py all --scale quick
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    EXPERIMENT_RUNNERS,
    format_runtime_comparison,
    format_similarity_evolution,
    format_utility_loss_table,
    save_json,
)
from repro.experiments.runtime import RuntimeComparison
from repro.experiments.similarity_evolution import SimilarityEvolution
from repro.experiments.utility_loss import UtilityLossTable


def render(result) -> str:
    if isinstance(result, SimilarityEvolution):
        return format_similarity_evolution(result)
    if isinstance(result, RuntimeComparison):
        return format_runtime_comparison(result)
    if isinstance(result, UtilityLossTable):
        return format_utility_loss_table(result)
    return str(result)


def run_one(name: str, scale: str, json_dir: str = "") -> None:
    print(f"===== {name} ({scale} scale) =====")
    results = EXPERIMENT_RUNNERS[name](scale=scale)
    if not isinstance(results, list):
        results = [results]
    for result in results:
        print(render(result))
        print()
    if json_dir:
        path = save_json(results if len(results) > 1 else results[0], f"{json_dir}/{name}.json")
        print(f"saved {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENT_RUNNERS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--scale", default="quick", choices=("quick", "paper"))
    parser.add_argument("--json-dir", default="", help="also save JSON results here")
    args = parser.parse_args()

    names = sorted(EXPERIMENT_RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, args.scale, args.json_dir)


if __name__ == "__main__":
    main()
