"""Snapshot cold start: build the index once, serve from the file forever.

Opening a :class:`~repro.service.ProtectionService` session pays for motif
enumeration exactly once — but every *process* that opens one pays it
again.  Snapshots break that: ``TPPProblem.save_index`` persists the built
index (flat arrays + motif + targets + constant + content hash) and
``ProtectionService.from_snapshot`` cold-starts a session from the file
with **no enumeration at all**, serving byte-identical answers.

This example:

1. builds a session the expensive way and answers a query,
2. saves the index snapshot next to it,
3. cold-starts a session from the snapshot **in a freshly spawned Python
   process** (nothing inherited from this one) and answers the same query,
4. checks the two protector traces are identical, and
5. shows the stale-snapshot guard refusing a mismatched graph.

Run with::

    python examples/snapshot_cold_start.py
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from pathlib import Path

from repro import ProtectionRequest, ProtectionService, TPPProblem, load_snapshot
from repro.datasets import arenas_email_like, sample_random_targets
from repro.exceptions import SnapshotMismatchError

BUDGET = 40


def serve_from_snapshot(path: str) -> dict:
    """Cold-start a session from ``path`` and answer one query.

    Runs inside a *spawned* worker process: a fresh interpreter that shares
    no state with the parent, exactly like a new deployment replica would.
    """
    started = time.perf_counter()
    service = ProtectionService.from_snapshot(path)
    result = service.solve(ProtectionRequest("SGB-Greedy", BUDGET))
    elapsed = time.perf_counter() - started
    payload = result.to_dict()
    payload["cold_start_seconds"] = elapsed
    return payload


def main() -> None:
    # 1. build a session the expensive way (enumeration) -------------------
    graph = arenas_email_like(nodes=600, seed=1)
    targets = sample_random_targets(graph, count=10, seed=0)
    started = time.perf_counter()
    problem = TPPProblem(graph, targets, motif="triangle")
    service = ProtectionService(problem)
    built = service.solve(ProtectionRequest("SGB-Greedy", BUDGET))
    build_seconds = time.perf_counter() - started
    print(
        f"built session: {service.pristine_similarity()} target subgraphs "
        f"enumerated, first answer in {build_seconds:.3f}s "
        f"(index_source={built.extra['service']['index_source']})"
    )

    # 2. persist the built index -------------------------------------------
    path = Path(tempfile.mkdtemp(prefix="tpp_snapshot_")) / "arenas.tppsnap"
    problem.save_index(path)
    print(f"snapshot saved: {path} ({path.stat().st_size} bytes)")

    # 3. cold-start in a freshly spawned process ---------------------------
    with ProcessPoolExecutor(max_workers=1, mp_context=get_context("spawn")) as pool:
        payload = pool.submit(serve_from_snapshot, str(path)).result()
    print(
        f"fresh process answered in {payload['cold_start_seconds']:.3f}s "
        f"without enumerating "
        f"(index_source={payload['extra']['service']['index_source']})"
    )

    # 4. the cold answer is byte-identical to the built one ----------------
    cold_protectors = tuple(tuple(edge) for edge in payload["protectors"])
    assert cold_protectors == built.protectors, "traces must be identical"
    assert payload["similarity_trace"] == list(built.similarity_trace)
    print(f"traces identical: {len(cold_protectors)} protectors, "
          f"s {built.initial_similarity} -> {built.final_similarity}")

    # 5. a stale snapshot is refused, never silently served ----------------
    snapshot = load_snapshot(path)
    snapshot.verify(graph, targets, "triangle")  # the true inputs pass
    drifted = graph.copy()
    drifted.add_edge(0, graph.number_of_nodes() + 1)
    try:
        snapshot.verify(drifted, targets, "triangle")
    except SnapshotMismatchError as error:
        print(f"stale snapshot refused: {error}")
    else:
        raise AssertionError("a drifted graph must be refused")


if __name__ == "__main__":
    main()
