"""Node-level protection: hide every relationship of one user.

The paper's future work asks for "target node privacy preserving"; the
library lifts its link-level machinery to nodes (see
:mod:`repro.core.node_protection`).  This example hides *all* relationships
of a chosen user and shows how much protector budget that takes compared to
hiding a handful of individual links.

Run with::

    python examples/protect_a_node.py
"""

from __future__ import annotations

from repro.core import protect_target_nodes
from repro.datasets import arenas_email_like
from repro.experiments import format_table
from repro.utility import compare_graphs


def main() -> None:
    graph = arenas_email_like(nodes=600, seed=5)

    # pick an upper-quartile-degree user: hubs are expensive to hide, leaves
    # are trivial, and a well-connected user makes the trade-off visible
    degrees = sorted(graph.degrees().items(), key=lambda item: item[1])
    user = degrees[(3 * len(degrees)) // 4][0]
    print(
        f"protecting user {user!r} with {graph.degree(user)} relationships "
        f"in a graph of {graph.number_of_nodes()} nodes"
    )

    rows = []
    for algorithm in ("sgb", "ct", "wt"):
        result = protect_target_nodes(
            graph, [user], budget=500, motif="triangle", algorithm=algorithm
        )
        exposure = sum(result.exposure_by_node().values())
        rows.append(
            (
                result.link_result.algorithm,
                len(result.problem.targets),
                result.link_result.budget_used,
                exposure,
                "yes" if result.fully_protected else "no",
            )
        )
    print()
    print(
        format_table(
            [
                "algorithm",
                "hidden links",
                "protector deletions",
                "links still inferable",
                "fully protected",
            ],
            rows,
        )
    )

    result = protect_target_nodes(graph, [user], budget=500, algorithm="sgb")
    report = compare_graphs(graph, result.released_graph(), metrics=("clust", "cn"))
    print()
    print(f"utility loss of the node-protected release: {report.summary()}")


if __name__ == "__main__":
    main()
