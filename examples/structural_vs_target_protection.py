"""Target-level protection vs structural anonymization.

Related work protects links by perturbing the *whole* graph (random
perturbation, degree-preserving switching, randomized response).  The paper
argues that for a small set of truly sensitive links this is both too weak
(the targets stay inferable) and too expensive (graph utility suffers).
This example makes the comparison concrete on one graph: every mechanism
gets a comparable edit budget and we record what is left of the targets'
inferability and of the graph's utility.

Run with::

    python examples/structural_vs_target_protection.py
"""

from __future__ import annotations

from repro.anonymization import compare_protection_mechanisms
from repro.datasets import arenas_email_like, sample_random_targets
from repro.experiments import format_table


def main() -> None:
    graph = arenas_email_like(nodes=600, seed=3)
    targets = sample_random_targets(graph, count=10, seed=1)
    print(
        f"graph: {graph.number_of_nodes()} nodes / {graph.number_of_edges()} edges; "
        f"{len(targets)} sensitive links"
    )

    outcomes = compare_protection_mechanisms(
        graph,
        targets,
        motif="triangle",
        metrics=("clust", "cn", "r"),
        seed=0,
    )

    rows = [
        (
            outcome.mechanism,
            outcome.edits,
            outcome.residual_similarity,
            f"{outcome.utility_loss_percent:.2f}%",
        )
        for outcome in outcomes
    ]
    print()
    print(
        format_table(
            ["mechanism", "edge edits", "surviving target subgraphs", "utility loss"],
            rows,
        )
    )
    print(
        "\nAt a comparable number of edge edits, only the targeted greedy "
        "deletion drives the surviving target subgraphs to zero; the "
        "structural mechanisms leave most of the adversary's evidence intact."
    )


if __name__ == "__main__":
    main()
