"""Index-snapshot cold-start benchmark (emits ``BENCH_snapshot.json``).

A :class:`~repro.service.ProtectionService` session pays its entire startup
cost in target-subgraph enumeration; a snapshot written by
``TPPProblem.save_index`` / ``repro-tpp build-index`` turns that into a file
read.  This benchmark measures, per built-in motif, the time to a **first
answered query** along both cold-start paths::

    build   ProtectionService(graph, targets, motif)   (enumerate)  + solve
    load    ProtectionService.from_snapshot(path)      (file read)  + solve

and verifies that the restored index is **bit identical** to the built one
(all ten flat arrays compared by bytes) and that SGB greedy runs on both
sessions produce identical protector traces — the benchmark doubles as a
differential test and exits non-zero on any mismatch.

Acceptance target: loading the snapshot is >= 5x faster than building, on
the overall (summed across motifs) ratio — per-motif builds take ~0.1-0.3s
where single-run noise swings a ratio by 20%+; the sum is stable enough for
CI.  The ``cold_start_speedup_met`` flag is enforced by
``check_bench_regression.py`` once committed true.

Run with::

    PYTHONPATH=src python benchmarks/bench_snapshot.py                  # committed scale
    PYTHONPATH=src python benchmarks/bench_snapshot.py --nodes 2000 --targets 20 --repeats 1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.targets import sample_degree_weighted_targets  # noqa: E402
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.graphs.graph import canonical_edge  # noqa: E402
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS, TargetSubgraphIndex  # noqa: E402
from repro.service import ProtectionRequest, ProtectionService  # noqa: E402

#: Acceptance bar for the load-vs-build cold-start speedup.
COLD_START_SPEEDUP_TARGET = 5.0


def _fingerprint(index: TargetSubgraphIndex) -> tuple:
    arrays = tuple(getattr(index, name).tobytes() for name in INDEX_ARRAY_FIELDS)
    return arrays + (index._target_ranges, index._candidate_ids)


def _trace(result) -> tuple:
    return result.protectors, result.similarity_trace


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    targets = [
        canonical_edge(*target)
        for target in sample_degree_weighted_targets(graph, args.targets, seed=args.seed)
    ]
    workdir = Path(tempfile.mkdtemp(prefix="bench_snapshot_"))

    per_motif: Dict[str, dict] = {}
    all_identical = True
    traces_agree = True
    total_build_seconds = 0.0
    total_load_seconds = 0.0
    speedups: List[float] = []

    for motif in args.motifs:
        # -- build path: enumerate, then answer one query ------------------
        build_seconds = float("inf")
        service = None
        built_result = None
        for _ in range(args.repeats):
            started = time.perf_counter()
            candidate = ProtectionService(graph, targets, motif=motif)
            budget = max(1, candidate.index.number_of_instances() // 4)
            request = ProtectionRequest("SGB-Greedy", budget)
            result = candidate.solve(request)
            build_seconds = min(build_seconds, time.perf_counter() - started)
            service, built_result = candidate, result
        budget = max(1, service.index.number_of_instances() // 4)
        request = ProtectionRequest("SGB-Greedy", budget)

        # -- snapshot: save once, then cold-start repeatedly ---------------
        path = workdir / f"{motif}.tppsnap"
        started = time.perf_counter()
        service.problem.save_index(path)
        save_seconds = time.perf_counter() - started

        load_seconds = float("inf")
        cold = None
        cold_result = None
        for _ in range(args.repeats):
            started = time.perf_counter()
            candidate = ProtectionService.from_snapshot(path)
            result = candidate.solve(request)
            load_seconds = min(load_seconds, time.perf_counter() - started)
            cold, cold_result = candidate, result

        identical = _fingerprint(cold.index) == _fingerprint(service.index)
        motif_traces_agree = _trace(cold_result) == _trace(built_result) and (
            cold_result.initial_similarity == built_result.initial_similarity
        )
        speedup = build_seconds / load_seconds if load_seconds > 0 else float("inf")

        all_identical = all_identical and identical
        traces_agree = traces_agree and motif_traces_agree
        total_build_seconds += build_seconds
        total_load_seconds += load_seconds
        speedups.append(speedup)
        per_motif[motif] = {
            "instances": service.index.number_of_instances(),
            "candidate_edges": service.index.number_of_candidate_edges(),
            "budget": budget,
            "build_seconds": round(build_seconds, 6),
            "save_seconds": round(save_seconds, 6),
            "load_seconds": round(load_seconds, 6),
            "snapshot_bytes": path.stat().st_size,
            "cold_start_speedup": round(speedup, 2),
            "identical": identical,
            "greedy_trace_agrees": motif_traces_agree,
        }

    overall = (
        total_build_seconds / total_load_seconds
        if total_load_seconds > 0
        else float("inf")
    )
    return {
        "kind": "snapshot",
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "seed": args.seed,
            "repeats": args.repeats,
            "motifs": list(args.motifs),
            "cpu_count": os.cpu_count(),
        },
        "motifs": per_motif,
        "min_cold_start_speedup": round(min(speedups), 2),
        "overall_cold_start_speedup": round(overall, 2),
        "cold_start_speedup_target": COLD_START_SPEEDUP_TARGET,
        "cold_start_speedup_met": overall >= COLD_START_SPEEDUP_TARGET,
        "snapshots_identical": all_identical,
        "greedy_traces_agree": traces_agree,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=12_000)
    parser.add_argument("--attach", type=int, default=5, help="edges per new node")
    parser.add_argument("--targets", type=int, default=100)
    parser.add_argument(
        "--motifs",
        nargs="+",
        default=["triangle", "rectangle", "rectri"],
        help="motifs to benchmark (each measured separately)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5, help="min-of-N timing")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_snapshot.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    config = report["config"]
    print(
        f"snapshot cold start at n={config['nodes']}, m={config['edges']}, "
        f"|T|={config['targets']}:"
    )
    for motif, row in report["motifs"].items():
        print(
            f"  {motif:>10}: build+solve {row['build_seconds']:6.3f}s  "
            f"load+solve {row['load_seconds']:6.3f}s "
            f"({row['cold_start_speedup']:.2f}x)  save {row['save_seconds']:.3f}s "
            f"{row['snapshot_bytes']} bytes  identical={row['identical']} "
            f"trace={row['greedy_trace_agrees']}"
        )
    print(
        f"  cold-start speedup: overall {report['overall_cold_start_speedup']:.2f}x, "
        f"per-motif min {report['min_cold_start_speedup']:.2f}x "
        f"(target >= {report['cold_start_speedup_target']}x overall, "
        f"met={report['cold_start_speedup_met']})"
    )
    print(f"report written to {args.output}")
    ok = report["snapshots_identical"] and report["greedy_traces_agree"]
    if not ok:
        print("ERROR: snapshot round trip disagrees — see the report", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
