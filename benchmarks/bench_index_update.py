"""Incremental index-update benchmark (emits ``BENCH_index_update.json``).

A live serving session sees its graph change a few edges at a time;
rebuilding the whole :class:`~repro.motifs.enumeration.TargetSubgraphIndex`
for every update re-enumerates every target.  ``apply_delta``
(:mod:`repro.motifs.updates`) splices only the motif instances incident to
the changed edges.  This benchmark measures, per built-in motif and per
delta size (1, 10 and 100 edges, half deletions / half insertions)::

    rebuild   TargetSubgraphIndex(updated_phase1_graph, targets, motif)
    delta     index.apply_delta(delta)

and verifies the applied index is **bit identical** to the rebuild (all ten
flat arrays, the per-target ranges and the candidate list compared by
bytes) and that SGB greedy runs on a delta-updated session and a
rebuilt-from-scratch session produce identical protector traces — the
benchmark doubles as a differential test and exits non-zero on any
mismatch.

Acceptance target: delta application is >= 10x faster than a full rebuild
for every delta of <= 10 edges (the ``delta_speedup_met`` flag, enforced
by ``check_bench_regression.py`` once committed true).  Large deltas (100
edges) are reported but not gated — they approach the rebuild's cost by
design as the touched fraction grows.

Run with::

    PYTHONPATH=src python benchmarks/bench_index_update.py                   # committed scale
    PYTHONPATH=src python benchmarks/bench_index_update.py --nodes 2000 --targets 20 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.model import TPPProblem  # noqa: E402
from repro.datasets.targets import sample_degree_weighted_targets  # noqa: E402
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.graphs.graph import canonical_edge  # noqa: E402
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS, TargetSubgraphIndex  # noqa: E402
from repro.motifs.updates import EdgeDelta  # noqa: E402
from repro.service import ProtectionRequest, ProtectionService  # noqa: E402

#: Acceptance bar: delta-apply vs full rebuild for deltas of <= this many edges.
DELTA_SPEEDUP_TARGET = 10.0
SMALL_DELTA_EDGES = 10


def _fingerprint(index: TargetSubgraphIndex) -> tuple:
    arrays = tuple(getattr(index, name).tobytes() for name in INDEX_ARRAY_FIELDS)
    return arrays + (index._target_ranges, index._candidate_ids)


def _trace(result) -> tuple:
    return result.protectors, result.similarity_trace


def _make_delta(phase1, targets, size: int, rng: random.Random) -> EdgeDelta:
    """Build a mixed delta: ``size // 2`` deletions + the rest insertions."""
    target_set = {canonical_edge(*target) for target in targets}
    candidates = [
        edge for edge in phase1.edges() if canonical_edge(*edge) not in target_set
    ]
    deletions = rng.sample(candidates, size // 2)
    nodes = list(phase1.nodes())
    insertions: List[tuple] = []
    taken = set(deletions)
    while len(insertions) < size - size // 2:
        u, v = rng.sample(nodes, 2)
        edge = canonical_edge(u, v)
        if edge in target_set or edge in taken or phase1.has_edge(*edge):
            continue
        taken.add(edge)
        insertions.append(edge)
    return EdgeDelta.from_edges(insert=insertions, delete=deletions)


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    targets = [
        canonical_edge(*target)
        for target in sample_degree_weighted_targets(graph, args.targets, seed=args.seed)
    ]

    per_motif: Dict[str, dict] = {}
    all_identical = True
    traces_agree = True
    speedups: List[float] = []
    small_speedups: List[float] = []

    for motif in args.motifs:
        problem = TPPProblem(graph, targets, motif=motif)
        index = problem.build_index()
        rows: Dict[str, dict] = {}
        for size in args.delta_sizes:
            rng = random.Random(args.seed * 1_000 + size)
            delta = _make_delta(problem.phase1_graph, targets, size, rng)

            # the updated phase-1 graph, built once outside both timed paths
            updated_phase1 = problem.phase1_graph.copy()
            for u, v in delta.deleted:
                updated_phase1.remove_edge(u, v)
            for u, v in delta.inserted:
                updated_phase1.add_edge(u, v)

            delta_seconds = float("inf")
            outcome = None
            for _ in range(args.repeats):
                started = time.perf_counter()
                outcome = index.apply_delta(delta)
                delta_seconds = min(delta_seconds, time.perf_counter() - started)

            rebuild_seconds = float("inf")
            rebuilt = None
            for _ in range(args.rebuild_repeats):
                started = time.perf_counter()
                rebuilt = TargetSubgraphIndex(updated_phase1, targets, motif)
                rebuild_seconds = min(
                    rebuild_seconds, time.perf_counter() - started
                )

            identical = _fingerprint(outcome.index) == _fingerprint(rebuilt)

            # greedy differential: a delta-updated session vs a session built
            # from scratch on the updated graph must answer identically
            applied_problem, _ = problem.apply_delta(delta)
            applied_service = ProtectionService(applied_problem)
            updated_graph = updated_phase1.copy()
            updated_graph.add_edges_from(targets)
            rebuilt_service = ProtectionService(
                TPPProblem(
                    updated_graph,
                    targets,
                    motif=motif,
                    constant=applied_problem.constant,
                )
            )
            budget = max(1, outcome.index.number_of_instances() // 4)
            request = ProtectionRequest("SGB-Greedy", budget)
            trace_agrees = _trace(applied_service.solve(request)) == _trace(
                rebuilt_service.solve(request)
            )

            speedup = (
                rebuild_seconds / delta_seconds if delta_seconds > 0 else float("inf")
            )
            all_identical = all_identical and identical
            traces_agree = traces_agree and trace_agrees
            speedups.append(speedup)
            if size <= SMALL_DELTA_EDGES:
                small_speedups.append(speedup)
            rows[str(size)] = {
                "inserts": len(delta.inserted),
                "deletes": len(delta.deleted),
                "instances_before": index.number_of_instances(),
                "instances_after": outcome.index.number_of_instances(),
                "changed_targets": len(outcome.changed_targets),
                "targets_reenumerated": outcome.targets_reenumerated,
                "delta_seconds": round(delta_seconds, 6),
                "rebuild_seconds": round(rebuild_seconds, 6),
                "delta_speedup": round(speedup, 2),
                "identical": identical,
                "greedy_trace_agrees": trace_agrees,
            }
        per_motif[motif] = rows

    min_small = min(small_speedups) if small_speedups else 0.0
    return {
        "kind": "index_update",
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "seed": args.seed,
            "repeats": args.repeats,
            "rebuild_repeats": args.rebuild_repeats,
            "delta_sizes": list(args.delta_sizes),
            "motifs": list(args.motifs),
            "cpu_count": os.cpu_count(),
        },
        "motifs": per_motif,
        "min_delta_speedup": round(min(speedups), 2) if speedups else 0.0,
        "min_small_delta_speedup": round(min_small, 2),
        "small_delta_edges": SMALL_DELTA_EDGES,
        "delta_speedup_target": DELTA_SPEEDUP_TARGET,
        "delta_speedup_met": min_small >= DELTA_SPEEDUP_TARGET,
        "deltas_identical": all_identical,
        "greedy_traces_agree": traces_agree,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--attach", type=int, default=5, help="edges per new node")
    parser.add_argument("--targets", type=int, default=100)
    parser.add_argument(
        "--delta-sizes",
        type=int,
        nargs="+",
        default=[1, 10, 100],
        help="edges per delta (half deletions, half insertions)",
    )
    parser.add_argument(
        "--motifs",
        nargs="+",
        default=["triangle", "rectangle", "rectri"],
        help="motifs to benchmark (each measured separately)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5, help="min-of-N delta timing")
    parser.add_argument(
        "--rebuild-repeats",
        type=int,
        default=2,
        help="min-of-N full-rebuild timing (rebuilds are the slow side)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_index_update.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    config = report["config"]
    print(
        f"index update at n={config['nodes']}, m={config['edges']}, "
        f"|T|={config['targets']}:"
    )
    for motif, rows in report["motifs"].items():
        for size, row in rows.items():
            print(
                f"  {motif:>10} x{size:>4}: delta {row['delta_seconds']:8.5f}s  "
                f"rebuild {row['rebuild_seconds']:8.5f}s "
                f"({row['delta_speedup']:.1f}x)  reenum={row['targets_reenumerated']} "
                f"identical={row['identical']} trace={row['greedy_trace_agrees']}"
            )
    print(
        f"  small-delta (<= {report['small_delta_edges']} edges) speedup min "
        f"{report['min_small_delta_speedup']:.1f}x "
        f"(target >= {report['delta_speedup_target']}x, "
        f"met={report['delta_speedup_met']})"
    )
    print(f"report written to {args.output}")
    ok = report["deltas_identical"] and report["greedy_traces_agree"]
    if not ok:
        print("ERROR: delta application disagrees with a rebuild — see the report", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
