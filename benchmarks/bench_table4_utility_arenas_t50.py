"""Table IV: utility loss ratio at full protection with a larger target set.

Same protocol as Table III but with 2.5x more targets (the paper moves from
|T| = 20 to |T| = 50; the benchmark moves from 10 to 25 at its reduced graph
scale).  The paper-shape assertion is the comparison across the two tables:
protecting more targets costs more utility, which the companion test checks
by re-running the |T| = 10 configuration.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.utility_loss import run_utility_loss

METHODS = ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD")


def _run(graph, num_targets):
    config = ExperimentConfig(
        dataset="arenas-email",
        motifs=("triangle",),
        num_targets=num_targets,
        repetitions=1,
        methods=METHODS,
        seed=0,
    )
    return run_utility_loss(
        config, budget=None, graph=graph, metrics=("clust", "cn", "r"), path_length_sample=None
    )


def test_table4_utility_loss_more_targets(benchmark, arenas_graph):
    table = benchmark.pedantic(lambda: _run(arenas_graph, 25), rounds=1, iterations=1)

    benchmark.extra_info["values_percent"] = {
        motif: dict(row) for motif, row in table.values.items()
    }

    small_table = _run(arenas_graph, 10)
    for method in METHODS:
        loss_small = small_table.values["triangle"][method]
        loss_large = table.values["triangle"][method]
        assert loss_large >= loss_small - 0.5, (
            f"{method}: protecting 25 targets should not cost less utility "
            f"than protecting 10 ({loss_large:.2f}% vs {loss_small:.2f}%)"
        )
        assert loss_large <= 20.0
