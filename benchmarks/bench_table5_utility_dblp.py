"""Table V: utility loss on the DBLP-scale graph with a fixed budget.

The paper evaluates |T| = 52 with k = 25 and reports only the scalable
utility metrics (clustering coefficient and core number); the loss is an
order of magnitude smaller than on Arenas-email because the graph is much
larger.  The benchmark mirrors that setup at its reduced scale and asserts
the "tiny loss on a large graph" shape.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.utility_loss import run_utility_loss

METHODS = (
    "SGB-Greedy",
    "CT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:DBD",
    "WT-Greedy:TBD",
)
BUDGET = 10


def test_table5_utility_loss_dblp(benchmark, dblp_graph):
    config = ExperimentConfig(
        dataset="dblp",
        motifs=("triangle", "rectangle", "rectri"),
        num_targets=12,
        repetitions=1,
        methods=METHODS,
        seed=0,
    )

    def run():
        return run_utility_loss(
            config, budget=BUDGET, graph=dblp_graph, metrics=("clust", "cn")
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info["values_percent"] = {
        motif: dict(row) for motif, row in table.values.items()
    }

    for motif, row in table.values.items():
        for method, loss in row.items():
            assert 0.0 <= loss <= 2.0, f"{method} on {motif}: loss {loss}%"
