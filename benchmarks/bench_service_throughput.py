"""Service throughput benchmark (emits ``BENCH_service_throughput.json``).

Measures what the session API buys: one ``(graph, targets, motif)`` instance,
a batch of >= 20 protection queries (every registered method x several
budgets — the shape of a Fig. 3/4 sweep), executed four ways::

    rebuild   legacy pre-service flow: a fresh TPPProblem per query, each
              direct call re-enumerates the target-subgraph index
    shared    one ProtectionService session, solve_many() serially — the
              index is built once, every query runs on a state copy
    thread    solve_many(workers=N) thread fan-out over the shared session
    process   solve_many(workers=N, mode="process") — the problem (with its
              built flat-array index) is pickled once per worker

and reports queries/sec for each, the shared-vs-rebuild speedup (acceptance
target: >= 5x), the process-workers-vs-serial speedup, and whether all four
paths produced byte-identical protector traces (the benchmark doubles as a
differential test and exits non-zero on any disagreement).

The worker fan-out can only win wall-clock when the machine actually has
cores to fan out to; the report records ``available_cpus`` and the
``workers_beat_serial`` flag is expected true only when more than one CPU is
available (single-core boxes pay IPC overhead for no parallelism).

Run with::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py             # committed scale
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --nodes 2000 --targets 20
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.model import TPPProblem  # noqa: E402
from repro.datasets.targets import sample_degree_weighted_targets  # noqa: E402
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.service import ProtectionRequest, ProtectionService  # noqa: E402
from repro.service.registry import get_method, method_names  # noqa: E402

#: Acceptance bar for the shared-index speedup over rebuild-per-call.
SHARED_SPEEDUP_TARGET = 5.0


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _requests(initial_similarity: int, fractions) -> List[ProtectionRequest]:
    budgets = [max(1, initial_similarity // divisor) for divisor in fractions]
    return [
        ProtectionRequest(method, budget, seed=seed)
        for method in method_names()
        for seed, budget in enumerate(budgets)
    ]


def _run_rebuild_per_call(graph, targets, motif, requests) -> tuple:
    """The legacy flow: every query constructs its own problem + engine state.

    Returns ``(results, index_build_seconds)`` — the second element is the
    total wall-clock the flow spent re-enumerating the target-subgraph index
    (once per query; the per-path build cost the session API eliminates).
    """
    results = []
    build_seconds = 0.0
    for request in requests:
        problem = TPPProblem(graph, targets, motif=motif)  # re-enumerates
        started = time.perf_counter()
        problem.build_index()
        build_seconds += time.perf_counter() - started
        spec = get_method(request.method)
        results.append(
            spec.runner(
                problem, request.budget, request.engine, request.seed,
                **request.options(),
            )
        )
    return results, build_seconds


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    targets = sample_degree_weighted_targets(graph, args.targets, seed=args.seed)

    # a probe session sizes the budget grid; the timed runs build their own
    probe = ProtectionService(TPPProblem(graph, targets, motif=args.motif))
    initial = probe.pristine_similarity()
    requests = _requests(initial, (16, 8, 4))
    n = len(requests)

    started = time.perf_counter()
    rebuild_results, rebuild_build_seconds = _run_rebuild_per_call(
        graph, targets, args.motif, requests
    )
    rebuild_seconds = time.perf_counter() - started

    # shared-index serial: session build (once) + the whole batch on state
    # copies; the build is included in the rebuild comparison but measured
    # separately so the worker fan-out compares batch-to-batch
    started = time.perf_counter()
    service = ProtectionService(TPPProblem(graph, targets, motif=args.motif))
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    shared_results = service.solve_many(requests)
    serial_batch_seconds = time.perf_counter() - started
    shared_seconds = build_seconds + serial_batch_seconds

    started = time.perf_counter()
    thread_results = service.solve_many(requests, workers=args.workers)
    thread_seconds = time.perf_counter() - started

    started = time.perf_counter()
    process_results = service.solve_many(
        requests, workers=args.workers, mode="process"
    )
    process_seconds = time.perf_counter() - started

    # what a process-mode worker pays to inherit the session: one pickle
    # round trip of the problem with its built flat-array index — no
    # enumeration, no counter rebuild happens on the worker side
    started = time.perf_counter()
    pickle.loads(pickle.dumps(service.problem))
    process_inherit_seconds = time.perf_counter() - started

    def traces(results):
        return [(result.protectors, result.similarity_trace) for result in results]

    traces_agree = (
        traces(rebuild_results)
        == traces(shared_results)
        == traces(thread_results)
        == traces(process_results)
    )

    shared_speedup = rebuild_seconds / shared_seconds if shared_seconds > 0 else float("inf")
    # workers = whichever fan-out mode the batch does best with (both are
    # one `workers=` argument away for the caller)
    workers_seconds = min(thread_seconds, process_seconds)
    workers_speedup = (
        serial_batch_seconds / workers_seconds if workers_seconds > 0 else float("inf")
    )
    cpus = _available_cpus()

    report = {
        "kind": "service_throughput",
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "motif": args.motif,
            "seed": args.seed,
            "initial_similarity": initial,
            "num_requests": n,
            "methods": list(method_names()),
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
        },
        "available_cpus": cpus,
        "index_build_seconds": round(build_seconds, 6),
        # per execution path: what each flow spends (re)building the index —
        # rebuild pays it once per query, the session once in total, thread
        # workers share the in-process session, and a process worker inherits
        # the built arrays through one pickle round trip
        "index_build_seconds_by_path": {
            "rebuild_total": round(rebuild_build_seconds, 6),
            "shared": round(build_seconds, 6),
            "thread": 0.0,
            "process_worker_inherit": round(process_inherit_seconds, 6),
        },
        "rebuild_seconds": round(rebuild_seconds, 6),
        "rebuild_qps": round(n / rebuild_seconds, 3),
        "shared_seconds": round(shared_seconds, 6),
        "shared_qps": round(n / shared_seconds, 3),
        "serial_batch_seconds": round(serial_batch_seconds, 6),
        "shared_vs_rebuild_speedup": round(shared_speedup, 2),
        "shared_speedup_target": SHARED_SPEEDUP_TARGET,
        "shared_speedup_met": shared_speedup >= SHARED_SPEEDUP_TARGET,
        "thread_seconds": round(thread_seconds, 6),
        "process_seconds": round(process_seconds, 6),
        "process_qps": round(n / process_seconds, 3),
        "workers_speedup": round(workers_speedup, 2),
        "workers_beat_serial": workers_speedup > 1.0,
        # single-core boxes pay fan-out overhead for no parallelism; the
        # regression gate only enforces flags that were true in the
        # committed report
        "workers_beat_serial_expected": cpus > 1,
        "traces_agree": traces_agree,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # committed scale: 20k nodes / 50 targets.  Chosen so the per-query index
    # rebuild clearly dominates the legacy flow even after the vectorized
    # build (PR 4) halved its cost — at smaller scales the shared-vs-rebuild
    # ratio sits too close to the 5x acceptance bar to gate on reliably.
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--attach", type=int, default=5, help="edges per new node")
    parser.add_argument("--targets", type=int, default=50)
    parser.add_argument(
        "--motif",
        default="rectri",
        help="rectri by default: triangle + rectangle enumeration makes the "
        "per-query index rebuild the legacy flow pays clearly measurable",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_service_throughput.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    n = report["config"]["num_requests"]
    print(
        f"{n} requests over {report['config']['methods'].__len__()} methods "
        f"(cpus={report['available_cpus']}):"
    )
    print(
        f"  rebuild-per-call: {report['rebuild_seconds']:8.3f}s  "
        f"({report['rebuild_qps']:7.2f} q/s)"
    )
    print(
        f"  shared serial:    {report['shared_seconds']:8.3f}s  "
        f"({report['shared_qps']:7.2f} q/s, build {report['index_build_seconds']:.3f}s)  "
        f"speedup {report['shared_vs_rebuild_speedup']:.2f}x "
        f"(target >= {SHARED_SPEEDUP_TARGET}x, met={report['shared_speedup_met']})"
    )
    print(f"  thread x{report['config']['workers']}:        {report['thread_seconds']:8.3f}s")
    print(
        f"  process x{report['config']['workers']}:       {report['process_seconds']:8.3f}s  "
        f"({report['process_qps']:7.2f} q/s)"
    )
    print(
        f"  best workers vs serial batch ({report['serial_batch_seconds']:.3f}s): "
        f"{report['workers_speedup']:.2f}x "
        f"(beats={report['workers_beat_serial']}, "
        f"expected={report['workers_beat_serial_expected']})"
    )
    by_path = report["index_build_seconds_by_path"]
    print(
        f"  index build by path: rebuild total {by_path['rebuild_total']:.3f}s, "
        f"shared {by_path['shared']:.3f}s, "
        f"process worker inherit {by_path['process_worker_inherit']:.3f}s"
    )
    print(f"  traces agree across all four paths: {report['traces_agree']}")
    print(f"report written to {args.output}")
    return 0 if report["traces_agree"] else 1


if __name__ == "__main__":
    sys.exit(main())
