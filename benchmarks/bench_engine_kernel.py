"""Old-vs-new coverage engine micro-benchmark (emits ``BENCH_engine_kernel.json``).

Times the scalable greedy algorithms end-to-end on a generated synthetic
graph twice per method: once on the incremental array kernel
(``engine="coverage"``, the default) and once on the seed's hash-set state
(``engine="coverage-set"``), then writes the wall-clocks and speedups to a
JSON file so future PRs can track the trajectory::

    PYTHONPATH=src python benchmarks/bench_engine_kernel.py              # 10k nodes
    PYTHONPATH=src python benchmarks/bench_engine_kernel.py --nodes 2000 # CI smoke

Target-subgraph enumeration is shared by both engines (exactly as in the
Fig. 5/6 harness) and reported separately; the timed region is protector
selection only.  The script exits non-zero if the two engines disagree on
any protector sequence, so it doubles as a large-instance differential test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.model import TPPProblem  # noqa: E402
from repro.datasets.targets import (  # noqa: E402
    sample_degree_weighted_targets,
    sample_random_targets,
)
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.service import ProtectionRequest, ProtectionService  # noqa: E402

#: The acceptance bar for the SGB end-to-end kernel speedup.
SGB_SPEEDUP_TARGET = 5.0

#: The acceptance bar for the CT end-to-end kernel speedup (the per-(edge,
#: target) counter matrix + per-target heaps; before them CT sat at ~1.4x).
CT_SPEEDUP_TARGET = 3.0


def _methods(budget: int):
    # the set engine runs SGB with lazy=False: that full argmax sweep per step
    # is exactly what the seed's set-based engine executed by default
    return {
        "SGB-Greedy-R": lambda engine: ProtectionRequest(
            "SGB-Greedy", budget, engine=engine, lazy=engine == "coverage"
        ),
        "CT-Greedy-R:TBD": lambda engine: ProtectionRequest(
            "CT-Greedy:TBD", budget, engine=engine
        ),
        "WT-Greedy-R:TBD": lambda engine: ProtectionRequest(
            "WT-Greedy:TBD", budget, engine=engine
        ),
    }


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    sampler = (
        sample_degree_weighted_targets if args.hub_targets else sample_random_targets
    )
    targets = sampler(graph, args.targets, seed=args.seed)
    # the session owns the shared index; its build time is the enumeration
    # cost both engines share (exactly as in the Fig. 5/6 harness)
    service = ProtectionService(TPPProblem(graph, targets, motif=args.motif))
    index = service.index
    enumeration_seconds = service.build_seconds

    report = {
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "motif": args.motif,
            "budget": args.budget,
            "seed": args.seed,
            "repeats": args.repeats,
            "instances": index.number_of_instances(),
            "candidate_edges": index.number_of_candidate_edges(),
            "cpu_count": os.cpu_count(),
        },
        "enumeration_seconds": round(enumeration_seconds, 6),
        "sgb_speedup_target": SGB_SPEEDUP_TARGET,
        "ct_speedup_target": CT_SPEEDUP_TARGET,
        "methods": {},
    }

    all_agree = True
    for label, make_request in _methods(args.budget).items():
        timings = {}
        results = {}
        for engine_label, engine in (("kernel", "coverage"), ("set", "coverage-set")):
            request = make_request(engine)
            # min over repeats: the runs are deterministic, so the spread is
            # pure scheduler/GC noise and the minimum is the robust statistic
            # (the CI regression gate compares speedup ratios of these)
            best_seconds = float("inf")
            for _ in range(max(1, args.repeats)):
                started = time.perf_counter()
                results[engine_label] = service.solve(request)
                best_seconds = min(best_seconds, time.perf_counter() - started)
            timings[engine_label] = best_seconds
        agree = results["kernel"].protectors == results["set"].protectors
        all_agree = all_agree and agree
        report["methods"][label] = {
            "kernel_seconds": round(timings["kernel"], 6),
            "set_seconds": round(timings["set"], 6),
            "speedup": round(timings["set"] / timings["kernel"], 2)
            if timings["kernel"] > 0
            else float("inf"),
            "budget_used": results["kernel"].budget_used,
            "final_similarity": results["kernel"].final_similarity,
            "initial_similarity": results["kernel"].initial_similarity,
            "protectors_agree": agree,
        }

    sgb = report["methods"]["SGB-Greedy-R"]
    report["sgb_speedup"] = sgb["speedup"]
    report["sgb_speedup_met"] = sgb["speedup"] >= SGB_SPEEDUP_TARGET
    ct = report["methods"]["CT-Greedy-R:TBD"]
    report["ct_speedup"] = ct["speedup"]
    report["ct_speedup_met"] = ct["speedup"] >= CT_SPEEDUP_TARGET
    report["all_protectors_agree"] = all_agree
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=4, help="edges per new node")
    parser.add_argument("--targets", type=int, default=30)
    parser.add_argument("--budget", type=int, default=25)
    parser.add_argument(
        "--motif",
        default="rectangle",
        help="rectangle by default: 3-length paths give the coverage structure "
        "enough instances for the engine gap to be measurable",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per method and engine; the minimum "
        "wall-clock is reported, which keeps the CI regression gate "
        "stable against scheduler noise",
    )
    parser.add_argument(
        "--uniform-targets",
        dest="hub_targets",
        action="store_false",
        help="sample targets uniformly instead of degree-weighted (hub) links; "
        "hub links carry the dense motif neighborhoods the kernel is built "
        "for, so they are the default workload",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_engine_kernel.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for label, row in report["methods"].items():
        print(
            f"{label:>18}: set {row['set_seconds']:8.3f}s  "
            f"kernel {row['kernel_seconds']:8.3f}s  "
            f"speedup {row['speedup']:6.2f}x  agree={row['protectors_agree']}"
        )
    print(
        f"SGB speedup {report['sgb_speedup']:.2f}x "
        f"(target >= {SGB_SPEEDUP_TARGET}x, met={report['sgb_speedup_met']}); "
        f"CT speedup {report['ct_speedup']:.2f}x "
        f"(target >= {CT_SPEEDUP_TARGET}x, met={report['ct_speedup_met']}); "
        f"report written to {args.output}"
    )
    return 0 if report["all_protectors_agree"] else 1


if __name__ == "__main__":
    sys.exit(main())
