"""Old-vs-new coverage engine micro-benchmark (emits ``BENCH_engine_kernel.json``).

Times the scalable greedy algorithms end-to-end on a generated synthetic
graph twice per method: once on the incremental array kernel
(``engine="coverage"``, the default) and once on the seed's hash-set state
(``engine="coverage-set"``), then writes the wall-clocks and speedups to a
JSON file so future PRs can track the trajectory::

    PYTHONPATH=src python benchmarks/bench_engine_kernel.py              # 10k nodes
    PYTHONPATH=src python benchmarks/bench_engine_kernel.py --nodes 2000 # CI smoke

A second section benchmarks the *native C kernel* against the numpy
fallback on the three state-level hot loops the ISSUE targets — the
SGB-style validated-top walk, the CT-style batched pair sweep, and the
WT-style single-target pair walk — on a denser graph where the kernel
work (not Python orchestration) dominates.  The native and numpy loops
must land on identical similarities; their best wall-clocks and speedups
are recorded with a ``native_speedup_met`` acceptance flag (target 5x).

All timings use a best-of-N harness with a minimum-total-walltime floor:
a measurement repeats until it has both ``--repeats`` runs *and*
``--min-seconds`` of accumulated wall-clock, then reports the minimum.
Sub-millisecond loops therefore accumulate hundreds of runs and the
reported minimum is stable against scheduler noise, which keeps the 30%
CI regression gate honest.

Target-subgraph enumeration is shared by both engines (exactly as in the
Fig. 5/6 harness) and reported separately; the timed region is protector
selection only.  The script exits non-zero if the two engines disagree on
any protector sequence or the two kernels disagree on any loop, so it
doubles as a large-instance differential test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._native import native_available  # noqa: E402
from repro.core.model import TPPProblem  # noqa: E402
from repro.datasets.targets import (  # noqa: E402
    sample_degree_weighted_targets,
    sample_random_targets,
)
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.service import ProtectionRequest, ProtectionService  # noqa: E402

#: The acceptance bar for the SGB end-to-end kernel speedup.
SGB_SPEEDUP_TARGET = 5.0

#: The acceptance bar for the CT end-to-end kernel speedup (the per-(edge,
#: target) counter matrix + per-target heaps; before them CT sat at ~1.4x).
CT_SPEEDUP_TARGET = 3.0

#: The acceptance bar for every native-vs-numpy kernel loop speedup.
NATIVE_SPEEDUP_TARGET = 5.0


def best_of(fn, repeats: int, min_seconds: float) -> float:
    """Return the minimum wall-clock of ``fn`` over a noise-robust sample.

    Runs until both ``repeats`` runs have happened *and* ``min_seconds``
    of total wall-clock has accumulated — cheap measurements repeat many
    times, expensive ones stop at ``repeats``.  The runs are
    deterministic, so the spread is pure scheduler/GC noise and the
    minimum is the robust statistic (the CI regression gate compares
    speedup ratios of these minima).
    """
    best = float("inf")
    total = 0.0
    runs = 0
    while runs < max(1, repeats) or total < min_seconds:
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        total += elapsed
        runs += 1
    return best


def _methods(budget: int):
    # the set engine runs SGB with lazy=False: that full argmax sweep per step
    # is exactly what the seed's set-based engine executed by default
    return {
        "SGB-Greedy-R": lambda engine: ProtectionRequest(
            "SGB-Greedy", budget, engine=engine, lazy=engine == "coverage"
        ),
        "CT-Greedy-R:TBD": lambda engine: ProtectionRequest(
            "CT-Greedy:TBD", budget, engine=engine
        ),
        "WT-Greedy-R:TBD": lambda engine: ProtectionRequest(
            "WT-Greedy:TBD", budget, engine=engine
        ),
    }


def _native_loops(index, budget: int):
    """The three state-level hot loops, parameterised by the kernel.

    Each loop drives the public ``CoverageState`` API exactly the way the
    corresponding greedy method does: SGB validates the global max-gain
    heap, CT sweeps the batched cross-target pair argmax, WT walks one
    target's pair heap to exhaustion before moving on.
    """
    constant = index.number_of_instances() + 1
    all_targets = list(index.targets)

    def sgb_loop(state):
        for _ in range(budget):
            top = state.top_gain_edge()
            if top is None:
                break
            state.delete_edge(top[0])
        return state.total_similarity()

    def ct_loop(state):
        for _ in range(budget // 2):
            best = state.best_scored_pair(all_targets, constant)
            if best is None:
                break
            state.delete_edge(best[2])
        return state.total_similarity()

    def wt_loop(state):
        done = 0
        for target in all_targets:
            while done < budget:
                best = state.best_scored_pair((target,), constant)
                if best is None:
                    break
                state.delete_edge(best[2])
                done += 1
            if done >= budget:
                break
        return state.total_similarity()

    return {"sgb": sgb_loop, "ct": ct_loop, "wt": wt_loop}


def run_native_section(args: argparse.Namespace) -> dict:
    """Benchmark the native kernel loops against the numpy fallback."""
    if not native_available():
        return {
            "available": False,
            "native_speedup_target": NATIVE_SPEEDUP_TARGET,
            "note": "native kernel unavailable (no compiler or REPRO_NATIVE=0); "
            "loops not timed",
        }
    graph = powerlaw_cluster_graph(
        args.nodes, args.native_attach, 0.4, seed=args.seed
    )
    targets = sample_degree_weighted_targets(
        graph, args.native_targets, seed=args.seed
    )
    problem = TPPProblem(graph, targets, motif=args.motif)
    started = time.perf_counter()
    index = problem.build_index()
    enumeration_seconds = time.perf_counter() - started

    section = {
        "available": True,
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "attach": args.native_attach,
            "targets": len(targets),
            "motif": args.motif,
            "budget": args.native_budget,
            "seed": args.seed,
            "instances": index.number_of_instances(),
            "candidate_edges": index.number_of_candidate_edges(),
        },
        "enumeration_seconds": round(enumeration_seconds, 6),
        "native_speedup_target": NATIVE_SPEEDUP_TARGET,
        "loops": {},
    }

    loops_agree = True
    min_speedup = float("inf")
    for label, loop in _native_loops(index, args.native_budget).items():
        timings = {}
        similarity = {}

        def timed(kernel_name, run=loop):
            similarity[kernel_name] = run(index.new_state(kernel=kernel_name))

        for kernel_name in ("native", "numpy"):
            timings[kernel_name] = best_of(
                lambda k=kernel_name: timed(k), args.repeats, args.min_seconds
            )
        agree = similarity["native"] == similarity["numpy"]
        loops_agree = loops_agree and agree
        speedup = (
            timings["numpy"] / timings["native"]
            if timings["native"] > 0
            else float("inf")
        )
        min_speedup = min(min_speedup, speedup)
        section["loops"][label] = {
            "native_seconds": round(timings["native"], 6),
            "numpy_seconds": round(timings["numpy"], 6),
            "native_speedup": round(speedup, 2),
            "final_similarity": similarity["native"],
            "kernels_agree": agree,
        }

    section["native_loops_agree"] = loops_agree
    section["min_native_speedup"] = round(min_speedup, 2)
    section["native_speedup_met"] = min_speedup >= NATIVE_SPEEDUP_TARGET
    return section


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    sampler = (
        sample_degree_weighted_targets if args.hub_targets else sample_random_targets
    )
    targets = sampler(graph, args.targets, seed=args.seed)
    # the session owns the shared index; its build time is the enumeration
    # cost both engines share (exactly as in the Fig. 5/6 harness)
    service = ProtectionService(TPPProblem(graph, targets, motif=args.motif))
    index = service.index
    enumeration_seconds = service.build_seconds

    report = {
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "motif": args.motif,
            "budget": args.budget,
            "seed": args.seed,
            "repeats": args.repeats,
            "min_seconds": args.min_seconds,
            "instances": index.number_of_instances(),
            "candidate_edges": index.number_of_candidate_edges(),
            "cpu_count": os.cpu_count(),
        },
        "enumeration_seconds": round(enumeration_seconds, 6),
        "sgb_speedup_target": SGB_SPEEDUP_TARGET,
        "ct_speedup_target": CT_SPEEDUP_TARGET,
        "methods": {},
    }

    all_agree = True
    for label, make_request in _methods(args.budget).items():
        timings = {}
        results = {}
        for engine_label, engine in (("kernel", "coverage"), ("set", "coverage-set")):
            request = make_request(engine)

            def solve(req=request, key=engine_label):
                results[key] = service.solve(req)

            timings[engine_label] = best_of(solve, args.repeats, args.min_seconds)
        agree = results["kernel"].protectors == results["set"].protectors
        all_agree = all_agree and agree
        report["methods"][label] = {
            "kernel_seconds": round(timings["kernel"], 6),
            "set_seconds": round(timings["set"], 6),
            "speedup": round(timings["set"] / timings["kernel"], 2)
            if timings["kernel"] > 0
            else float("inf"),
            "budget_used": results["kernel"].budget_used,
            "final_similarity": results["kernel"].final_similarity,
            "initial_similarity": results["kernel"].initial_similarity,
            "protectors_agree": agree,
        }

    sgb = report["methods"]["SGB-Greedy-R"]
    report["sgb_speedup"] = sgb["speedup"]
    report["sgb_speedup_met"] = sgb["speedup"] >= SGB_SPEEDUP_TARGET
    ct = report["methods"]["CT-Greedy-R:TBD"]
    report["ct_speedup"] = ct["speedup"]
    report["ct_speedup_met"] = ct["speedup"] >= CT_SPEEDUP_TARGET
    report["all_protectors_agree"] = all_agree

    native = run_native_section(args)
    report["native"] = native
    report["native_available"] = native["available"]
    report["min_native_speedup"] = native.get("min_native_speedup", 0.0)
    report["native_speedup_met"] = native.get("native_speedup_met", False)
    report["native_loops_agree"] = native.get("native_loops_agree", True)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=4, help="edges per new node")
    parser.add_argument("--targets", type=int, default=30)
    parser.add_argument("--budget", type=int, default=25)
    parser.add_argument(
        "--motif",
        default="rectangle",
        help="rectangle by default: 3-length paths give the coverage structure "
        "enough instances for the engine gap to be measurable",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="minimum timing repetitions per measurement; the minimum "
        "wall-clock is reported, which keeps the CI regression gate "
        "stable against scheduler noise",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.5,
        help="minimum accumulated wall-clock per measurement: sub-millisecond "
        "loops repeat until this floor is reached, so their reported "
        "minima do not ride on a handful of noisy samples",
    )
    parser.add_argument(
        "--native-attach",
        type=int,
        default=8,
        help="edges per new node for the native-loop graph (denser than the "
        "end-to-end graph so kernel work dominates Python orchestration)",
    )
    parser.add_argument(
        "--native-targets",
        type=int,
        default=250,
        help="degree-weighted targets for the native-loop graph",
    )
    parser.add_argument(
        "--native-budget",
        type=int,
        default=400,
        help="deletions per native kernel loop (CT uses half: its batched "
        "sweep touches every target per step)",
    )
    parser.add_argument(
        "--uniform-targets",
        dest="hub_targets",
        action="store_false",
        help="sample targets uniformly instead of degree-weighted (hub) links; "
        "hub links carry the dense motif neighborhoods the kernel is built "
        "for, so they are the default workload",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_engine_kernel.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for label, row in report["methods"].items():
        print(
            f"{label:>18}: set {row['set_seconds']:8.3f}s  "
            f"kernel {row['kernel_seconds']:8.3f}s  "
            f"speedup {row['speedup']:6.2f}x  agree={row['protectors_agree']}"
        )
    native = report["native"]
    if native["available"]:
        for label, row in native["loops"].items():
            print(
                f"{'native ' + label:>18}: numpy {row['numpy_seconds']:8.4f}s  "
                f"native {row['native_seconds']:8.4f}s  "
                f"speedup {row['native_speedup']:6.2f}x  "
                f"agree={row['kernels_agree']}"
            )
    else:
        print("native kernel unavailable: loops not timed")
    print(
        f"SGB speedup {report['sgb_speedup']:.2f}x "
        f"(target >= {SGB_SPEEDUP_TARGET}x, met={report['sgb_speedup_met']}); "
        f"CT speedup {report['ct_speedup']:.2f}x "
        f"(target >= {CT_SPEEDUP_TARGET}x, met={report['ct_speedup_met']}); "
        f"native min speedup {report['min_native_speedup']}x "
        f"(target >= {NATIVE_SPEEDUP_TARGET}x, met={report['native_speedup_met']}); "
        f"report written to {args.output}"
    )
    ok = report["all_protectors_agree"] and report["native_loops_agree"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
