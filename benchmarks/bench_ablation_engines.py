"""Ablation: coverage index vs naive recount vs lazy (CELF) evaluation.

DESIGN.md calls out the coverage formulation and the optional lazy greedy as
the two implementation choices that make the algorithms scale; this ablation
quantifies each step on the same problem instance (SGB-Greedy, Triangle and
Rectangle motifs, full-protection budget).
"""

from __future__ import annotations

import pytest

from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy

VARIANTS = {
    "recount": {"engine": "recount", "lazy": False},
    "coverage-set": {"engine": "coverage-set", "lazy": False},
    "coverage-set+celf": {"engine": "coverage-set", "lazy": True},
    "coverage": {"engine": "coverage", "lazy": False},
    "coverage+lazy": {"engine": "coverage", "lazy": True},
}


@pytest.mark.parametrize("motif", ["triangle", "rectangle"])
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_ablation_engine_variants(benchmark, arenas_graph, arenas_targets, motif, variant):
    problem = TPPProblem(arenas_graph, arenas_targets, motif=motif)
    problem.build_index()
    budget = problem.initial_similarity() + 1
    options = VARIANTS[variant]

    result = benchmark.pedantic(
        lambda: sgb_greedy(problem, budget, **options), rounds=1, iterations=1
    )

    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["budget_used"] = result.budget_used
    assert result.fully_protected

    # all variants reach full protection with the same number of deletions
    reference = sgb_greedy(problem, budget, engine="coverage")
    assert result.budget_used == reference.budget_used
