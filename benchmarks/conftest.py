"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's figures or tables (or an
ablation) at "quick" scale: shrunken synthetic stand-ins of the paper's
datasets so that the whole suite finishes in minutes while preserving the
qualitative shape of the results.  The graphs and target samples are built
once per session and shared.
"""

from __future__ import annotations

import pytest

from repro.core.model import TPPProblem
from repro.datasets.registry import load_dataset
from repro.datasets.targets import sample_random_targets

# Benchmark-scale parameters (quick profile).
ARENAS_NODES = 350
DBLP_NODES = 2000
ARENAS_TARGETS = 10
DBLP_TARGETS = 12


@pytest.fixture(scope="session")
def arenas_graph():
    """Arenas-email-like benchmark graph (synthetic stand-in, ~350 nodes)."""
    return load_dataset("arenas-email", nodes=ARENAS_NODES, seed=1)


@pytest.fixture(scope="session")
def dblp_graph():
    """DBLP-like benchmark graph (synthetic stand-in, ~2000 nodes)."""
    return load_dataset("dblp", nodes=DBLP_NODES, seed=7)


@pytest.fixture(scope="session")
def arenas_targets(arenas_graph):
    """Target sample on the Arenas-like graph (|T| = 10)."""
    return sample_random_targets(arenas_graph, ARENAS_TARGETS, seed=0)


@pytest.fixture(scope="session")
def dblp_targets(dblp_graph):
    """Target sample on the DBLP-like graph (|T| = 12)."""
    return sample_random_targets(dblp_graph, DBLP_TARGETS, seed=0)


def make_problem(graph, targets, motif: str) -> TPPProblem:
    """Build a TPP problem for a benchmark (index built lazily by the runs)."""
    return TPPProblem(graph, targets, motif=motif)
