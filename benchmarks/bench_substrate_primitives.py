"""Micro-benchmarks of the substrate primitives the algorithms are built on.

These are not paper artefacts; they exist so regressions in the hot paths
(motif enumeration, coverage-state queries, utility metrics) show up in the
benchmark history before they show up as hours added to the figure runs.
"""

from __future__ import annotations

import pytest

from repro.core.model import TPPProblem
from repro.motifs.base import get_motif
from repro.utility.metrics import compute_metrics


@pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri"])
def test_bench_target_subgraph_enumeration(benchmark, arenas_graph, arenas_targets, motif):
    problem = TPPProblem(arenas_graph, arenas_targets, motif=motif)

    index = benchmark(problem.build_index)
    assert index.initial_total_similarity() == problem.initial_similarity()


@pytest.mark.parametrize("motif", ["triangle", "rectangle"])
def test_bench_similarity_recount(benchmark, arenas_graph, arenas_targets, motif):
    pattern = get_motif(motif)
    phase1 = arenas_graph.without_edges(arenas_targets)

    def recount():
        return sum(pattern.count(phase1, target) for target in arenas_targets)

    total = benchmark(recount)
    assert total >= 0


@pytest.mark.parametrize("state_kind", ["array", "set"])
def test_bench_coverage_gain_queries(benchmark, arenas_graph, arenas_targets, state_kind):
    """Old-vs-new gain queries: the array kernel reads counters (O(1)/edge),
    the set state rescans the inverted index per edge."""
    problem = TPPProblem(arenas_graph, arenas_targets, motif="rectangle")
    index = problem.build_index()
    state = index.new_state() if state_kind == "array" else index.new_set_state()
    candidates = index.candidate_edge_list()

    def query_all():
        return sum(state.gain(edge) for edge in candidates)

    total = benchmark(query_all)
    assert total >= len(candidates) * 0  # non-negative


def test_bench_kernel_candidate_scan(benchmark, arenas_graph, arenas_targets):
    """Live-candidate enumeration from the gain counters (no per-edge rescan)."""
    problem = TPPProblem(arenas_graph, arenas_targets, motif="rectangle")
    state = problem.build_index().new_state()

    candidates = benchmark(state.candidate_edge_list)
    assert candidates


def test_bench_kernel_top_gain_drain(benchmark, arenas_graph, arenas_targets):
    """Heap-backed greedy drain: repeatedly pop the max-gain edge and delete it
    (the inner loop of the lazy SGB-Greedy-R)."""
    problem = TPPProblem(arenas_graph, arenas_targets, motif="rectangle")
    index = problem.build_index()

    def drain():
        state = index.new_state()
        deletions = 0
        while True:
            top = state.top_gain_edge()
            if top is None:
                break
            state.delete_edge(top[0])
            deletions += 1
        return deletions

    deletions = benchmark.pedantic(drain, rounds=1, iterations=1)
    assert deletions > 0


def test_bench_scalable_utility_metrics(benchmark, dblp_graph):
    values = benchmark.pedantic(
        lambda: compute_metrics(dblp_graph, metrics=("clust", "cn")),
        rounds=1,
        iterations=1,
    )
    assert set(values) == {"clust", "cn"}
