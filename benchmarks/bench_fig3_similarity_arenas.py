"""Figure 3: evolution of existing target subgraphs vs budget (Arenas-email).

Each benchmark runs the full seven-method sweep for one motif on the
Arenas-like graph and records, in ``extra_info``, the series the paper plots
(final similarity per method at the largest budget plus the critical budget
of the SGB greedy).  The qualitative shape asserted here is the paper's:
SGB <= CT <= WT <= RDT <= RD at equal budget, and the greedy reaches zero.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.similarity_evolution import run_similarity_evolution

ARENAS_TARGETS = 10  # |T| at benchmark scale (paper: 20)

METHODS = (
    "SGB-Greedy",
    "CT-Greedy:DBD",
    "WT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:TBD",
    "RD",
    "RDT",
)


@pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri"])
def test_fig3_similarity_evolution(benchmark, arenas_graph, motif):
    config = ExperimentConfig(
        dataset="arenas-email",
        motifs=(motif,),
        num_targets=ARENAS_TARGETS,
        repetitions=2,
        methods=METHODS,
        seed=0,
    )

    def run():
        return run_similarity_evolution(config, motif, graph=arenas_graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    final = {method: values[-1] for method, values in result.curves.items()}
    benchmark.extra_info["initial_similarity"] = result.initial_similarity
    benchmark.extra_info["k_star_sgb"] = result.critical_budget.get("SGB-Greedy")
    benchmark.extra_info["final_similarity"] = final

    # paper-shape assertions
    assert final["SGB-Greedy"] == 0.0
    assert final["SGB-Greedy"] <= final["CT-Greedy:TBD"] + 1e-9
    assert final["CT-Greedy:TBD"] <= final["RD"] + 1e-9
    assert final["RDT"] <= final["RD"] + 1e-9
