"""Extension benchmark: attack success before/after protection (§VI-D claim).

Not a numbered figure in the paper, but the claim it quantifies is central
to the discussion: a fully protected release zeroes every triangle-family
predictor, while longer-range predictors (Katz) may retain signal.  The
benchmark records per-predictor AUC and exposure in ``extra_info``.
"""

from __future__ import annotations

from repro.experiments.attack_defense import run_attack_defense
from repro.experiments.config import ExperimentConfig


def test_ext_attack_defense(benchmark, arenas_graph):
    config = ExperimentConfig(
        dataset="arenas-email",
        motifs=("triangle",),
        num_targets=8,
        repetitions=1,
        methods=("SGB-Greedy",),
        seed=0,
    )

    def run():
        return run_attack_defense(
            config, motif="triangle", negative_samples=150, graph=arenas_graph
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info["auc_before"] = dict(result.auc_before)
    benchmark.extra_info["auc_after"] = dict(result.auc_after)
    benchmark.extra_info["exposed_after"] = dict(result.exposed_after)

    for name in ("common_neighbors", "jaccard", "adamic_adar", "resource_allocation"):
        assert result.exposed_after[name] == 0.0
        assert result.auc_after[name] <= result.auc_before[name] + 1e-9
