"""Table III: utility loss ratio at full protection, Arenas-email, |T| = 20.

The benchmark runs the full table (every greedy method × every motif, full
protection budget) on the benchmark-scale Arenas-like graph and records the
per-cell percentages in ``extra_info``.  The paper-shape assertions: every
loss stays in the low single-digit percent range, and the Rectangle motif
(which needs the most deletions) costs at least as much as the Triangle.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.utility_loss import run_utility_loss

METHODS = (
    "SGB-Greedy",
    "CT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:DBD",
    "WT-Greedy:TBD",
)


def test_table3_utility_loss_full_protection(benchmark, arenas_graph):
    config = ExperimentConfig(
        dataset="arenas-email",
        motifs=("triangle", "rectangle", "rectri"),
        num_targets=10,
        repetitions=1,
        methods=METHODS,
        seed=0,
    )

    def run():
        return run_utility_loss(
            config, budget=None, graph=arenas_graph, path_length_sample=60
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info["values_percent"] = {
        motif: dict(row) for motif, row in table.values.items()
    }
    benchmark.extra_info["budgets_used"] = {
        motif: dict(row) for motif, row in table.budgets_used.items()
    }

    for motif, row in table.values.items():
        for method, loss in row.items():
            assert 0.0 <= loss <= 15.0, f"{method} on {motif}: loss {loss}%"
    assert (
        table.values["rectangle"]["SGB-Greedy"]
        >= table.values["triangle"]["SGB-Greedy"] - 1e-9
    )
