"""Table III: utility loss ratio at full protection, Arenas-email, |T| = 20.

The benchmark runs the full table (every greedy method × every motif, full
protection budget) on the benchmark-scale Arenas-like graph and records the
per-cell percentages in ``extra_info``.  The paper-shape assertions: every
loss stays in the low single-digit percent range, and the Rectangle motif
(which needs the most deletions) costs at least as much as the Triangle.

A second benchmark demonstrates the ``SGB-Greedy+BB`` extension on the same
graph: under a *fixed* budget the branch-and-bound tail refinement is never
worse than plain SGB-Greedy on any cell and strictly better on at least one
(less residual similarity for the same number of deletions = less utility
spent per broken subgraph).
"""

from __future__ import annotations

from repro.core.model import TPPProblem
from repro.datasets.targets import sample_random_targets
from repro.experiments.config import ExperimentConfig
from repro.experiments.utility_loss import run_utility_loss
from repro.service import ProtectionRequest, ProtectionService

METHODS = (
    "SGB-Greedy",
    "SGB-Greedy+BB",
    "CT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:DBD",
    "WT-Greedy:TBD",
)


def test_table3_utility_loss_full_protection(benchmark, arenas_graph):
    config = ExperimentConfig(
        dataset="arenas-email",
        motifs=("triangle", "rectangle", "rectri"),
        num_targets=10,
        repetitions=1,
        methods=METHODS,
        seed=0,
    )

    def run():
        return run_utility_loss(
            config, budget=None, graph=arenas_graph, path_length_sample=60
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info["values_percent"] = {
        motif: dict(row) for motif, row in table.values.items()
    }
    benchmark.extra_info["budgets_used"] = {
        motif: dict(row) for motif, row in table.budgets_used.items()
    }

    for motif, row in table.values.items():
        for method, loss in row.items():
            assert 0.0 <= loss <= 15.0, f"{method} on {motif}: loss {loss}%"
    assert (
        table.values["rectangle"]["SGB-Greedy"]
        >= table.values["triangle"]["SGB-Greedy"] - 1e-9
    )
    # at full protection the greedy stops on its own, so the branch-and-bound
    # refinement is a no-op and the +BB column must reproduce SGB exactly
    for motif, row in table.values.items():
        assert abs(row["SGB-Greedy+BB"] - row["SGB-Greedy"]) <= 1e-9, motif


def test_table3_bb_refinement_beats_sgb(benchmark, arenas_graph):
    """Fixed-budget cells: +BB never loses to SGB and strictly wins one cell."""
    targets = sample_random_targets(arenas_graph, 10, seed=2)
    cells = [
        (motif, budget)
        for motif in ("triangle", "rectangle", "rectri")
        for budget in (3, 5)
    ]

    def run():
        outcomes = {}
        for motif, budget in cells:
            service = ProtectionService(TPPProblem(arenas_graph, targets, motif=motif))
            sgb = service.solve(ProtectionRequest("SGB-Greedy", budget))
            bb = service.solve(ProtectionRequest("SGB-Greedy+BB", budget))
            outcomes[f"{motif}/k={budget}"] = (
                sgb.final_similarity,
                bb.final_similarity,
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["final_similarity_sgb_vs_bb"] = {
        cell: {"sgb": sgb_final, "bb": bb_final}
        for cell, (sgb_final, bb_final) in outcomes.items()
    }

    for cell, (sgb_final, bb_final) in outcomes.items():
        assert bb_final <= sgb_final, f"{cell}: +BB worse than SGB"
    assert any(bb < sgb for sgb, bb in outcomes.values()), (
        "expected at least one strict +BB improvement over SGB-Greedy"
    )
