"""Fail when a fresh benchmark report regresses against the committed one.

CI re-runs a benchmark at the committed configuration and compares the
freshly emitted JSON against the report checked into the repository::

    PYTHONPATH=src python benchmarks/bench_engine_kernel.py --output fresh.json
    python benchmarks/check_bench_regression.py fresh.json BENCH_engine_kernel.json

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --output fresh.json
    python benchmarks/check_bench_regression.py fresh.json BENCH_service_throughput.json

    PYTHONPATH=src python benchmarks/bench_index_build.py --output fresh.json
    python benchmarks/check_bench_regression.py fresh.json BENCH_index_build.json

    PYTHONPATH=src python benchmarks/bench_snapshot.py --output fresh.json
    python benchmarks/check_bench_regression.py fresh.json BENCH_snapshot.json

    PYTHONPATH=src python benchmarks/bench_index_update.py --output fresh.json
    python benchmarks/check_bench_regression.py fresh.json BENCH_index_update.json

    PYTHONPATH=src python benchmarks/bench_service_http.py --output fresh.json
    python benchmarks/check_bench_regression.py fresh.json BENCH_service_http.json

    PYTHONPATH=src python benchmarks/bench_sharding.py --output fresh.json
    python benchmarks/check_bench_regression.py fresh.json BENCH_sharding.json

The report kind is read from the committed JSON (``"kind"``; missing means
the engine-kernel report).  For the sharding report the check fails if any
of the three identity flags went false in the fresh run —
``single_shard_identity`` (routed solves bit-identical to unsharded subset
solves), ``merge_identity`` (scatter-gather merges reproduce the unsharded
protectors and replayed trace), ``assignment_invariant`` (shard assignment
unchanged under target permutation and endpoint flips) — if the
``scatter_speedup`` dropped more than ``--max-regression`` below the
committed value, or if the ``workers_beat_serial`` flag regressed (with the
usual single-CPU skip).  For the service-http report the check fails if
the HTTP-served traces stopped matching direct in-process solves, if the
coalesced duplicate burst stopped returning byte-identical payloads, if the
coalesce speedup dropped more than ``--max-regression`` below the committed
value, or if the ``coalesce_speedup_met`` / ``coalesced_single_solve``
acceptance flags regressed from the committed report.  For the index-update report the check fails if
delta application stopped being bit-identical to a from-scratch rebuild (or
the greedy traces diverged), if the worst small-delta apply-vs-rebuild
speedup dropped more than ``--max-regression`` below the committed value,
or if the ``delta_speedup_met`` acceptance flag regressed from the
committed report.  For the snapshot report the check fails if the
restored index stopped being bit-identical to the built one (or the greedy
traces diverged), if the overall load-vs-build cold-start speedup dropped
more than ``--max-regression`` below the committed value, or if the
``cold_start_speedup_met`` acceptance flag regressed from the committed
report.  For the index-build report the check fails if
the builds stopped being bit-identical (or their greedy traces diverged), if
the overall vectorized-vs-seed build speedup dropped more than
``--max-regression`` below the committed value, or if an acceptance flag
that was true in the committed report (``vectorized_speedup_met``,
``workers_beat_serial``) is no longer met — with the same single-CPU skip
for ``workers_beat_serial`` as the service report.  For the kernel report
the check fails (exit 1)
if any method's kernel-vs-set *speedup* dropped by more than
``--max-regression`` (default 30%, absorbing CI machine noise), if a method
disappeared, if the engines stopped agreeing on protectors, if the native
and numpy kernels stopped agreeing on a hot-loop similarity, or if a speedup
acceptance target recorded in the committed report is no longer met.  The
native-vs-numpy loop speedups get the same per-loop floors, and the
``native_speedup_met`` flag the same noise tolerance (fail only when the
fresh minimum misses the 5x *target* by more than ``--max-regression``);
all native and end-to-end speedup floors are skipped when the fresh run
records ``native_available: false`` (no C toolchain is machine shape, not a
regression — agreement checks still apply).  For
the service-throughput report it fails if the traces stopped agreeing, if
the shared-vs-rebuild speedup dropped more than ``--max-regression`` below
the committed value, or if an acceptance flag that was true in the committed
report (``shared_speedup_met``, ``workers_beat_serial``) is no longer met —
except that ``workers_beat_serial`` is skipped when the *fresh* run records
``workers_beat_serial_expected: false`` (a single-CPU runner cannot show a
parallel win; that is machine shape, not a regression).  Larger speedups and
new methods never fail the check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _check_flags(fresh: dict, committed: dict, flags) -> list:
    """Enforce boolean acceptance flags that were true in the committed report.

    ``workers_beat_serial`` is skipped when the *fresh* run records
    ``workers_beat_serial_expected: false`` (a single-CPU runner cannot show
    a parallel win; that is machine shape, not a regression).
    """
    failures = []
    for flag in flags:
        if not committed.get(flag) or fresh.get(flag, False):
            continue
        if flag == "workers_beat_serial" and not fresh.get(
            "workers_beat_serial_expected", True
        ):
            print(
                "workers_beat_serial skipped: fresh runner reports a single "
                "available CPU (workers_beat_serial_expected=false)"
            )
            continue
        failures.append(f"{flag} was true in the committed report, now false")
    return failures


def compare_index_build(fresh: dict, committed: dict, max_regression: float) -> list:
    """Return the failure list for an ``index_build`` report pair."""
    failures = []
    if not fresh.get("parallel_identical", False):
        failures.append(
            "fresh run: parallel/vectorized builds are no longer bit-identical "
            "to the seed build"
        )
    if not fresh.get("greedy_traces_agree", False):
        failures.append(
            "fresh run: greedy traces diverge between build strategies"
        )
    committed_speedup = committed.get("overall_vectorized_speedup", 0.0)
    fresh_speedup = fresh.get("overall_vectorized_speedup", 0.0)
    floor = committed_speedup * (1.0 - max_regression)
    if fresh_speedup < floor:
        failures.append(
            f"overall_vectorized_speedup {fresh_speedup:.2f}x fell more than "
            f"{max_regression:.0%} below the committed {committed_speedup:.2f}x "
            f"(floor {floor:.2f}x)"
        )
    failures.extend(
        _check_flags(
            fresh, committed, ("vectorized_speedup_met", "workers_beat_serial")
        )
    )
    return failures


def compare_snapshot(fresh: dict, committed: dict, max_regression: float) -> list:
    """Return the failure list for a ``snapshot`` report pair."""
    failures = []
    if not fresh.get("snapshots_identical", False):
        failures.append(
            "fresh run: restored snapshots are no longer bit-identical to "
            "the built indexes"
        )
    if not fresh.get("greedy_traces_agree", False):
        failures.append(
            "fresh run: greedy traces diverge between built and "
            "snapshot-restored sessions"
        )
    committed_speedup = committed.get("overall_cold_start_speedup", 0.0)
    fresh_speedup = fresh.get("overall_cold_start_speedup", 0.0)
    floor = committed_speedup * (1.0 - max_regression)
    if fresh_speedup < floor:
        failures.append(
            f"overall_cold_start_speedup {fresh_speedup:.2f}x fell more than "
            f"{max_regression:.0%} below the committed {committed_speedup:.2f}x "
            f"(floor {floor:.2f}x)"
        )
    failures.extend(_check_flags(fresh, committed, ("cold_start_speedup_met",)))
    return failures


def compare_index_update(fresh: dict, committed: dict, max_regression: float) -> list:
    """Return the failure list for an ``index_update`` report pair."""
    failures = []
    if not fresh.get("deltas_identical", False):
        failures.append(
            "fresh run: delta-applied indexes are no longer bit-identical to "
            "a from-scratch rebuild"
        )
    if not fresh.get("greedy_traces_agree", False):
        failures.append(
            "fresh run: greedy traces diverge between delta-updated and "
            "rebuilt sessions"
        )
    committed_speedup = committed.get("min_small_delta_speedup", 0.0)
    fresh_speedup = fresh.get("min_small_delta_speedup", 0.0)
    floor = committed_speedup * (1.0 - max_regression)
    if fresh_speedup < floor:
        failures.append(
            f"min_small_delta_speedup {fresh_speedup:.2f}x fell more than "
            f"{max_regression:.0%} below the committed {committed_speedup:.2f}x "
            f"(floor {floor:.2f}x)"
        )
    failures.extend(_check_flags(fresh, committed, ("delta_speedup_met",)))
    return failures


def compare_service(fresh: dict, committed: dict, max_regression: float) -> list:
    """Return the failure list for a ``service_throughput`` report pair."""
    failures = []
    if not fresh.get("traces_agree", False):
        failures.append(
            "fresh run: service-path protector traces no longer agree with "
            "the legacy direct calls"
        )
    committed_speedup = committed.get("shared_vs_rebuild_speedup", 0.0)
    fresh_speedup = fresh.get("shared_vs_rebuild_speedup", 0.0)
    floor = committed_speedup * (1.0 - max_regression)
    if fresh_speedup < floor:
        failures.append(
            f"shared_vs_rebuild_speedup {fresh_speedup:.2f}x fell more than "
            f"{max_regression:.0%} below the committed {committed_speedup:.2f}x "
            f"(floor {floor:.2f}x)"
        )
    failures.extend(
        _check_flags(fresh, committed, ("shared_speedup_met", "workers_beat_serial"))
    )
    return failures


def compare_sharding(fresh: dict, committed: dict, max_regression: float) -> list:
    """Return the failure list for a ``sharding`` report pair."""
    failures = []
    if not fresh.get("single_shard_identity", False):
        failures.append(
            "fresh run: single-shard routed solves are no longer "
            "bit-identical to unsharded subset solves"
        )
    if not fresh.get("merge_identity", False):
        failures.append(
            "fresh run: scatter-gather merges no longer reproduce the "
            "unsharded session's protectors and replayed trace"
        )
    if not fresh.get("assignment_invariant", False):
        failures.append(
            "fresh run: shard assignment is no longer invariant under "
            "target permutation and endpoint flips"
        )
    committed_speedup = committed.get("scatter_speedup", 0.0)
    fresh_speedup = fresh.get("scatter_speedup", 0.0)
    floor = committed_speedup * (1.0 - max_regression)
    if fresh_speedup < floor:
        failures.append(
            f"scatter_speedup {fresh_speedup:.2f}x fell more than "
            f"{max_regression:.0%} below the committed {committed_speedup:.2f}x "
            f"(floor {floor:.2f}x)"
        )
    failures.extend(_check_flags(fresh, committed, ("workers_beat_serial",)))
    return failures


def compare_service_http(fresh: dict, committed: dict, max_regression: float) -> list:
    """Return the failure list for a ``service_http`` report pair."""
    failures = []
    if not fresh.get("traces_agree", False):
        failures.append(
            "fresh run: HTTP-served protector traces no longer agree with "
            "direct in-process solves"
        )
    if not fresh.get("responses_identical", False):
        failures.append(
            "fresh run: coalesced duplicate responses are no longer "
            "byte-identical"
        )
    committed_speedup = committed.get("coalesce_speedup", 0.0)
    fresh_speedup = fresh.get("coalesce_speedup", 0.0)
    floor = committed_speedup * (1.0 - max_regression)
    if fresh_speedup < floor:
        failures.append(
            f"coalesce_speedup {fresh_speedup:.2f}x fell more than "
            f"{max_regression:.0%} below the committed {committed_speedup:.2f}x "
            f"(floor {floor:.2f}x)"
        )
    failures.extend(
        _check_flags(
            fresh, committed, ("coalesce_speedup_met", "coalesced_single_solve")
        )
    )
    return failures


def compare(fresh: dict, committed: dict, max_regression: float) -> list:
    """Return a list of human-readable failures (empty == pass)."""
    if committed.get("kind") == "service_throughput":
        return compare_service(fresh, committed, max_regression)
    if committed.get("kind") == "service_http":
        return compare_service_http(fresh, committed, max_regression)
    if committed.get("kind") == "sharding":
        return compare_sharding(fresh, committed, max_regression)
    if committed.get("kind") == "index_build":
        return compare_index_build(fresh, committed, max_regression)
    if committed.get("kind") == "snapshot":
        return compare_snapshot(fresh, committed, max_regression)
    if committed.get("kind") == "index_update":
        return compare_index_update(fresh, committed, max_regression)
    failures = []
    if not fresh.get("all_protectors_agree", False):
        failures.append("fresh run: engines disagree on a protector sequence")
    if fresh.get("native_available") and not fresh.get("native_loops_agree", True):
        failures.append(
            "fresh run: native and numpy kernels disagree on a hot-loop "
            "similarity"
        )
    # The committed speedups were measured with the native kernel powering
    # the default engine.  A runner with no C toolchain falls back to numpy,
    # which is machine shape (like workers_beat_serial on a 1-CPU box), not
    # a regression — skip the speedup floors there but keep the agreement
    # checks above.
    native_skipped = committed.get("native_available", False) and not fresh.get(
        "native_available", True
    )
    if native_skipped:
        print(
            "native speedup floors skipped: fresh runner reports "
            "native_available=false (no C toolchain or REPRO_NATIVE=0)"
        )
        return failures
    for method, committed_row in committed.get("methods", {}).items():
        fresh_row = fresh.get("methods", {}).get(method)
        if fresh_row is None:
            failures.append(f"{method}: missing from the fresh report")
            continue
        committed_speedup = committed_row.get("speedup", 0.0)
        fresh_speedup = fresh_row.get("speedup", 0.0)
        floor = committed_speedup * (1.0 - max_regression)
        if fresh_speedup < floor:
            failures.append(
                f"{method}: speedup {fresh_speedup:.2f}x fell more than "
                f"{max_regression:.0%} below the committed "
                f"{committed_speedup:.2f}x (floor {floor:.2f}x)"
            )
    for flag, target_key in (
        ("sgb_speedup_met", "sgb_speedup_target"),
        ("ct_speedup_met", "ct_speedup_target"),
    ):
        if committed.get(flag) and not fresh.get(flag, False):
            failures.append(
                f"{flag.split('_')[0].upper()} speedup target "
                f"(>= {committed.get(target_key)}x) no longer met: "
                f"fresh {fresh.get(target_key.replace('_target', ''))}x"
            )
    committed_loops = committed.get("native", {}).get("loops", {})
    fresh_loops = fresh.get("native", {}).get("loops", {})
    for loop, committed_loop in committed_loops.items():
        fresh_loop = fresh_loops.get(loop)
        if fresh_loop is None:
            failures.append(f"native {loop}: missing from the fresh report")
            continue
        committed_speedup = committed_loop.get("native_speedup", 0.0)
        fresh_speedup = fresh_loop.get("native_speedup", 0.0)
        floor = committed_speedup * (1.0 - max_regression)
        if fresh_speedup < floor:
            failures.append(
                f"native {loop}: speedup {fresh_speedup:.2f}x fell more than "
                f"{max_regression:.0%} below the committed "
                f"{committed_speedup:.2f}x (floor {floor:.2f}x)"
            )
    if committed.get("native_speedup_met") and not fresh.get(
        "native_speedup_met", False
    ):
        # The 5x bar sits close to the measured minima, so grant the flag the
        # same noise tolerance as the per-loop floors: only fail when the
        # fresh minimum misses the *target* by more than max_regression.
        target = committed.get("native", {}).get("native_speedup_target", 0.0)
        fresh_min = fresh.get("min_native_speedup", 0.0)
        tolerated_floor = target * (1.0 - max_regression)
        if fresh_min < tolerated_floor:
            failures.append(
                f"native speedup target (>= {target}x) no longer met: fresh "
                f"minimum {fresh_min}x is below the tolerated floor "
                f"{tolerated_floor:.2f}x"
            )
        else:
            print(
                f"native_speedup_met tolerated: fresh minimum {fresh_min}x is "
                f"within {max_regression:.0%} of the {target}x target "
                "(runner noise)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly emitted BENCH_engine_kernel.json")
    parser.add_argument("committed", help="committed BENCH_engine_kernel.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="tolerated fractional speedup drop per method (default 0.30)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    committed = json.loads(Path(args.committed).read_text())
    failures = compare(fresh, committed, args.max_regression)
    if committed.get("kind") == "snapshot":
        print(
            f"overall_cold_start_speedup: committed "
            f"{committed.get('overall_cold_start_speedup')}x, fresh "
            f"{fresh.get('overall_cold_start_speedup')}x; bit-identical restores: "
            f"{fresh.get('snapshots_identical')}; greedy traces agree: "
            f"{fresh.get('greedy_traces_agree')}"
        )
    elif committed.get("kind") == "index_build":
        print(
            f"overall_vectorized_speedup: committed "
            f"{committed.get('overall_vectorized_speedup')}x, fresh "
            f"{fresh.get('overall_vectorized_speedup')}x; bit-identical builds: "
            f"{fresh.get('parallel_identical')}; greedy traces agree: "
            f"{fresh.get('greedy_traces_agree')}"
        )
    elif committed.get("kind") == "index_update":
        print(
            f"min_small_delta_speedup: committed "
            f"{committed.get('min_small_delta_speedup')}x, fresh "
            f"{fresh.get('min_small_delta_speedup')}x; bit-identical deltas: "
            f"{fresh.get('deltas_identical')}; greedy traces agree: "
            f"{fresh.get('greedy_traces_agree')}"
        )
    elif committed.get("kind") == "service_throughput":
        print(
            f"shared_vs_rebuild_speedup: committed "
            f"{committed.get('shared_vs_rebuild_speedup')}x, fresh "
            f"{fresh.get('shared_vs_rebuild_speedup')}x; workers_speedup: "
            f"committed {committed.get('workers_speedup')}x, fresh "
            f"{fresh.get('workers_speedup')}x"
        )
    elif committed.get("kind") == "sharding":
        print(
            f"scatter_speedup: committed {committed.get('scatter_speedup')}x, "
            f"fresh {fresh.get('scatter_speedup')}x; identities — single "
            f"shard: {fresh.get('single_shard_identity')}, merge: "
            f"{fresh.get('merge_identity')}, assignment: "
            f"{fresh.get('assignment_invariant')}"
        )
    elif committed.get("kind") == "service_http":
        print(
            f"coalesce_speedup: committed {committed.get('coalesce_speedup')}x, "
            f"fresh {fresh.get('coalesce_speedup')}x; serial p50: committed "
            f"{committed.get('serial_p50_ms')}ms, fresh "
            f"{fresh.get('serial_p50_ms')}ms; responses identical: "
            f"{fresh.get('responses_identical')}; single solve: "
            f"{fresh.get('coalesced_single_solve')}"
        )
    else:
        for method in sorted(committed.get("methods", {})):
            fresh_speedup = fresh.get("methods", {}).get(method, {}).get("speedup")
            committed_speedup = committed["methods"][method].get("speedup")
            print(f"{method:>18}: committed {committed_speedup}x, fresh {fresh_speedup}x")
        for loop in sorted(committed.get("native", {}).get("loops", {})):
            fresh_speedup = (
                fresh.get("native", {})
                .get("loops", {})
                .get(loop, {})
                .get("native_speedup")
            )
            committed_speedup = committed["native"]["loops"][loop].get(
                "native_speedup"
            )
            print(
                f"{'native ' + loop:>18}: committed {committed_speedup}x, "
                f"fresh {fresh_speedup}x"
            )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"no benchmark regression beyond {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
