"""Figure 5: running time of naive vs scalable greedy (Arenas-email).

The paper reports the naive SGB/CT/WT-Greedy to be roughly 20x slower than
their -R counterparts on Arenas-email.  Here each (algorithm, engine, motif)
combination is its own pytest-benchmark case, so ``--benchmark-only`` output
directly shows the naive-vs-scalable gap; the assertions only check that the
protector selections agree, the timing comparison is the benchmark itself.

Three engines are timed: ``recount`` (naive), ``coverage-set`` (the original
hash-set -R implementation) and ``coverage`` (the incremental array kernel),
so both the paper's naive-vs-scalable gap and this library's old-vs-new
kernel gap fall out of one run.
"""

from __future__ import annotations

import pytest

from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy

BUDGET = 5

ALGORITHMS = {
    "SGB-Greedy": lambda problem, engine: sgb_greedy(problem, BUDGET, engine=engine),
    "CT-Greedy:TBD": lambda problem, engine: ct_greedy(
        problem, BUDGET, budget_division="tbd", engine=engine
    ),
    "WT-Greedy:TBD": lambda problem, engine: wt_greedy(
        problem, BUDGET, budget_division="tbd", engine=engine
    ),
}


@pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri"])
@pytest.mark.parametrize("engine", ["coverage", "coverage-set", "recount"])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fig5_selection_runtime(
    benchmark, arenas_graph, arenas_targets, motif, engine, algorithm
):
    problem = TPPProblem(arenas_graph, arenas_targets, motif=motif)
    problem.build_index()  # enumeration shared by both engines, as in Lemma 5
    runner = ALGORITHMS[algorithm]

    result = benchmark.pedantic(lambda: runner(problem, engine), rounds=1, iterations=1)

    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["budget_used"] = result.budget_used
    benchmark.extra_info["final_similarity"] = result.final_similarity

    # both engines must reach the same protection level for the same budget
    reference = runner(problem, "coverage")
    assert result.final_similarity == reference.final_similarity
