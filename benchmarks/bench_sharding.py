"""Sharded-session benchmark (emits ``BENCH_sharding.json``).

Exercises the scatter-gather serving layer on one ``(graph, targets,
motif)`` instance: an unsharded ``ProtectionService`` is the ground truth
and a ``ShardedProtectionService`` with K shard sub-sessions answers the
same query batch three ways::

    single     every per-shard target piece as a subset request — routed
               to exactly one shard and expected bit-identical to the
               unsharded subset solve (the single-shard identity)
    scatter    full-session requests that span all shards — budgets split
               deterministically, shards solved concurrently, answers
               merged; the merged trace is cross-validated against the
               unsharded session's ``evaluate_trace`` of the merged
               protectors AND against per-piece unsharded subset solves
               run at the budgets the split actually chose (read back
               from the result metadata)
    fan-out    ``solve_many`` over the sharded session, serial vs thread
               vs process workers, expected byte-identical

and reports three identity flags (``single_shard_identity``,
``merge_identity``, ``assignment_invariant`` — the benchmark doubles as a
differential test and exits non-zero if any is false), the wall-clock
``scatter_speedup`` of the concurrent scatter-gather over solving the
same per-shard sub-requests serially on the shard sub-sessions, and the
``workers_beat_serial`` flag for the ``solve_many`` fan-out.

The fan-out can only win wall-clock with real cores; the report records
``available_cpus`` and ``workers_beat_serial_expected`` is true only when
more than one CPU is available.

Run with::

    PYTHONPATH=src python benchmarks/bench_sharding.py              # committed scale
    PYTHONPATH=src python benchmarks/bench_sharding.py --nodes 8000 --targets 18
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.model import TPPProblem  # noqa: E402
from repro.datasets.targets import sample_degree_weighted_targets  # noqa: E402
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.graphs.graph import edge_sort_key  # noqa: E402
from repro.service import (  # noqa: E402
    ProtectionRequest,
    ProtectionService,
    ShardedProtectionService,
    shard_assignment,
)

#: methods exercised per budget — the three greedy families whose traces
#: the sharding identity theorem covers (fixed set to bound the runtime).
METHODS = ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD")


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _trace(result) -> Tuple:
    return (result.protectors, result.similarity_trace)


def _requests(initial_similarity: int, fractions) -> List[ProtectionRequest]:
    budgets = [max(1, initial_similarity // divisor) for divisor in fractions]
    return [
        ProtectionRequest(method, budget, seed=seed)
        for method in METHODS
        for seed, budget in enumerate(budgets)
    ]


def _merge_protectors(pieces: List[Tuple]) -> Tuple:
    """Keep-first dedup concatenation, exactly as the shard merge does."""
    merged, seen = [], set()
    for piece in pieces:
        for protector in piece:
            if protector not in seen:
                seen.add(protector)
                merged.append(protector)
    return tuple(merged)


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    sampled = sample_degree_weighted_targets(graph, args.targets, seed=args.seed)
    # canonical order: the identity theorem is stated against an unsharded
    # session whose targets are in edge_sort_key order (the sharded
    # constructor canonicalises; :TBD division breaks ties by position)
    targets = tuple(sorted(sampled, key=edge_sort_key))

    problem = TPPProblem(graph, targets, motif=args.motif)
    problem.build_index()
    unsharded = ProtectionService(problem)
    started = time.perf_counter()
    sharded = ShardedProtectionService(problem, shards=args.shards)
    shard_build_seconds = time.perf_counter() - started

    initial = unsharded.pristine_similarity()
    requests = _requests(initial, (8, 4, 2))

    # -- single-shard identity: each shard piece as a subset request ----
    single_shard_identity = True
    started = time.perf_counter()
    for piece in sharded.assignment:
        for request in requests:
            subset = request.with_overrides(
                targets=piece, budget=max(1, request.budget // args.shards)
            )
            if _trace(sharded.solve(subset)) != _trace(unsharded.solve(subset)):
                single_shard_identity = False
    single_seconds = time.perf_counter() - started

    # -- scatter-gather: full-session requests span every shard ---------
    # median of per-repeat batch times: scheduler/GC spikes on a loaded
    # runner would otherwise dominate these sub-second batches
    scatter_samples = []
    for _ in range(args.repeats):
        started = time.perf_counter()
        scatter_results = [sharded.solve(request) for request in requests]
        scatter_samples.append(time.perf_counter() - started)
    scatter_seconds = statistics.median(scatter_samples)

    # merge identity, cross-validated against the unsharded ground truth
    # (untimed): the merged protectors must equal the keep-first dedup of
    # per-piece unsharded subset solves run at the budgets the split chose
    # (read back from the result metadata), and the merged trace must be
    # the unsharded session's replay of the merged sequence
    merge_identity = True
    for request, result in zip(requests, scatter_results):
        meta = result.extra["service"]["shards"]
        if meta["mode"] != "scatter-gather":
            merge_identity = False
            continue
        pieces = []
        for index in meta["routed"]:
            piece = sharded.assignment[index]
            budget = meta["budgets"][str(index)]
            pieces.append(
                unsharded.solve(
                    request.with_overrides(targets=piece, budget=budget)
                ).protectors
            )
        if _merge_protectors(pieces) != result.protectors:
            merge_identity = False
        if (
            unsharded.evaluate_trace(result.protectors)
            != result.similarity_trace
        ):
            merge_identity = False

    # serial equivalent of the scatter: the same per-shard sub-requests
    # solved one after another on the shard sub-sessions, plus the
    # per-shard merged-trace replay the gather pays — what the request
    # would cost without the concurrent fan-out
    serial_samples = []
    for _ in range(args.repeats):
        started = time.perf_counter()
        for request, result in zip(requests, scatter_results):
            meta = result.extra["service"]["shards"]
            for index in meta["routed"]:
                sharded.shards[index].solve(
                    request.with_overrides(budget=meta["budgets"][str(index)])
                )
            for index in meta["routed"]:
                sharded.shards[index].evaluate_trace(result.protectors)
        serial_samples.append(time.perf_counter() - started)
    serial_equivalent_seconds = statistics.median(serial_samples)
    scatter_speedup = (
        serial_equivalent_seconds / scatter_seconds
        if scatter_seconds > 0
        else float("inf")
    )

    # -- assignment invariance: pure function of the target *set* -------
    assignment = shard_assignment(targets, args.shards)
    shuffled = list(targets)
    random.Random(args.seed).shuffle(shuffled)
    flipped = tuple((v, u) for u, v in shuffled)
    assignment_invariant = (
        shard_assignment(tuple(shuffled), args.shards) == assignment
        and shard_assignment(flipped, args.shards) == assignment
        and assignment == sharded.assignment
    )

    # -- solve_many fan-out over the sharded session --------------------
    started = time.perf_counter()
    serial_results = sharded.solve_many(requests)
    serial_batch_seconds = time.perf_counter() - started
    started = time.perf_counter()
    thread_results = sharded.solve_many(requests, workers=args.workers)
    thread_seconds = time.perf_counter() - started
    started = time.perf_counter()
    process_results = sharded.solve_many(
        requests, workers=args.workers, mode="process"
    )
    process_seconds = time.perf_counter() - started
    fanout_identical = (
        [_trace(r) for r in serial_results]
        == [_trace(r) for r in thread_results]
        == [_trace(r) for r in process_results]
        == [_trace(r) for r in scatter_results]
    )
    merge_identity = merge_identity and fanout_identical
    workers_seconds = min(thread_seconds, process_seconds)
    workers_speedup = (
        serial_batch_seconds / workers_seconds
        if workers_seconds > 0
        else float("inf")
    )
    cpus = _available_cpus()

    return {
        "kind": "sharding",
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "motif": args.motif,
            "seed": args.seed,
            "shards": args.shards,
            "initial_similarity": initial,
            "num_requests": len(requests),
            "methods": list(METHODS),
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
        },
        "available_cpus": cpus,
        "shard_build_seconds": round(shard_build_seconds, 6),
        "single_seconds": round(single_seconds, 6),
        "scatter_seconds": round(scatter_seconds, 6),
        "serial_equivalent_seconds": round(serial_equivalent_seconds, 6),
        "scatter_speedup": round(scatter_speedup, 2),
        "serial_batch_seconds": round(serial_batch_seconds, 6),
        "thread_seconds": round(thread_seconds, 6),
        "process_seconds": round(process_seconds, 6),
        "workers_speedup": round(workers_speedup, 2),
        "workers_beat_serial": workers_speedup > 1.0,
        # single-core boxes pay fan-out overhead for no parallelism; the
        # regression gate only enforces flags true in the committed report
        "workers_beat_serial_expected": cpus > 1,
        "single_shard_identity": single_shard_identity,
        "merge_identity": merge_identity,
        "fanout_identical": fanout_identical,
        "assignment_invariant": assignment_invariant,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # committed scale: small enough that the full identity sweep (every
    # shard piece x every request, both sessions) stays under a minute
    parser.add_argument("--nodes", type=int, default=30_000)
    parser.add_argument("--attach", type=int, default=5, help="edges per new node")
    parser.add_argument(
        "--targets",
        type=int,
        default=90,
        help="90 by default: enough per-shard work that the scatter "
        "timing is not dominated by thread machinery",
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--motif", default="rectri")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--repeats",
        type=int,
        default=10,
        help="timed-batch repetitions; the reported seconds are medians",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_sharding.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    config = report["config"]
    print(
        f"{config['num_requests']} requests x {config['shards']} shards "
        f"({config['targets']} targets, cpus={report['available_cpus']}):"
    )
    print(
        f"  single-shard sweep: {report['single_seconds']:8.3f}s  "
        f"identity={report['single_shard_identity']}"
    )
    print(
        f"  scatter-gather:     {report['scatter_seconds']:8.3f}s  vs "
        f"serial equivalent {report['serial_equivalent_seconds']:.3f}s  "
        f"speedup {report['scatter_speedup']:.2f}x  "
        f"merge identity={report['merge_identity']}"
    )
    print(
        f"  solve_many x{config['workers']}:      thread "
        f"{report['thread_seconds']:.3f}s, process "
        f"{report['process_seconds']:.3f}s vs serial "
        f"{report['serial_batch_seconds']:.3f}s  "
        f"speedup {report['workers_speedup']:.2f}x "
        f"(beats={report['workers_beat_serial']}, "
        f"expected={report['workers_beat_serial_expected']})"
    )
    print(f"  assignment invariant: {report['assignment_invariant']}")
    print(f"report written to {args.output}")
    identities = (
        report["single_shard_identity"]
        and report["merge_identity"]
        and report["assignment_invariant"]
    )
    return 0 if identities else 1


if __name__ == "__main__":
    sys.exit(main())
