"""Index-construction benchmark (emits ``BENCH_index_build.json``).

Session build — ``IndexedGraph`` snapshot + target-subgraph enumeration +
flat-array assembly — is the dominant latency of every new
:class:`~repro.service.ProtectionService` session, every first subset query
and every process-mode worker spin-up.  This benchmark measures the three
construction strategies on a DBLP-shaped synthetic graph, per built-in
motif::

    seed        assembly="python": the seed's element-wise loops (per-node
                neighbor sorts, per-membership CSR cursors, per-slot counter
                walk)
    vectorized  assembly="numpy" (the default): bulk counting sorts
                (np.lexsort / np.argsort / np.bincount / np.cumsum)
    workers=N   vectorized assembly + pass-1 enumeration fanned out over N
                worker processes (build_workers=N)

and verifies, for every strategy, that the resulting index is **bit
identical** to the seed build (all ten flat arrays compared by bytes) and
that an SGB greedy run on it produces an identical protector trace — the
benchmark doubles as a differential test and exits non-zero on any mismatch.

Acceptance target: the vectorized build is >= 2x the seed build on a single
CPU at the committed scale.  The worker fan-out can only win wall-clock when
the machine has cores to fan out to; ``available_cpus`` is recorded and the
``workers_beat_serial`` flag is expected true only on multi-core boxes
(single-core machines pay pickling overhead for no parallelism — the flag
stays honest, like the service-throughput report's).

Run with::

    PYTHONPATH=src python benchmarks/bench_index_build.py                  # committed scale
    PYTHONPATH=src python benchmarks/bench_index_build.py --nodes 2000 --targets 20 --repeats 1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.engines import CoverageEngine  # noqa: E402
from repro.core.model import TPPProblem  # noqa: E402
from repro.core.sgb import sgb_greedy  # noqa: E402
from repro.datasets.targets import sample_degree_weighted_targets  # noqa: E402
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.graphs.graph import canonical_edge  # noqa: E402
from repro.motifs.enumeration import INDEX_ARRAY_FIELDS, TargetSubgraphIndex  # noqa: E402

#: Acceptance bar for the vectorized-vs-seed build speedup (single CPU).
VECTORIZED_SPEEDUP_TARGET = 2.0


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _fingerprint(index: TargetSubgraphIndex) -> tuple:
    arrays = tuple(getattr(index, name).tobytes() for name in INDEX_ARRAY_FIELDS)
    return arrays + (index._target_ranges, index._candidate_ids)


def _greedy_trace(problem: TPPProblem, index: TargetSubgraphIndex, budget: int):
    problem.adopt_index(index)
    engine = CoverageEngine(problem, state=index.new_state())
    result = sgb_greedy(problem, budget, engine=engine)
    return result.protectors, result.similarity_trace


def _timed_build(phase1, targets, motif, repeats: int, **kwargs):
    best = float("inf")
    index = None
    for _ in range(repeats):
        started = time.perf_counter()
        index = TargetSubgraphIndex(phase1, targets, motif, **kwargs)
        best = min(best, time.perf_counter() - started)
    return index, best


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    targets = [
        canonical_edge(*target)
        for target in sample_degree_weighted_targets(graph, args.targets, seed=args.seed)
    ]
    phase1 = graph.without_edges(targets)
    worker_counts = sorted(set(args.workers))
    cpus = _available_cpus()

    per_motif: Dict[str, dict] = {}
    all_identical = True
    traces_agree = True
    speedups: List[float] = []
    total_seed_seconds = 0.0
    total_vectorized_seconds = 0.0
    workers_beat_serial = False

    for motif in args.motifs:
        seed_index, seed_seconds = _timed_build(
            phase1, targets, motif, args.repeats, assembly="python"
        )
        vec_index, vec_seconds = _timed_build(phase1, targets, motif, args.repeats)
        reference = _fingerprint(seed_index)
        identical = _fingerprint(vec_index) == reference

        problem = TPPProblem(graph, targets, motif=motif)
        budget = max(1, seed_index.number_of_instances() // 4)
        reference_trace = _greedy_trace(problem, seed_index, budget)
        motif_traces_agree = _greedy_trace(problem, vec_index, budget) == reference_trace

        workers_seconds: Dict[str, float] = {}
        for count in worker_counts:
            par_index, par_seconds = _timed_build(
                phase1, targets, motif, args.repeats, build_workers=count
            )
            workers_seconds[str(count)] = round(par_seconds, 6)
            identical = identical and _fingerprint(par_index) == reference
            motif_traces_agree = motif_traces_agree and (
                _greedy_trace(problem, par_index, budget) == reference_trace
            )

        speedup = seed_seconds / vec_seconds if vec_seconds > 0 else float("inf")
        best_workers = min(workers_seconds.values()) if workers_seconds else None
        if best_workers is not None and best_workers < vec_seconds:
            workers_beat_serial = True
        speedups.append(speedup)
        total_seed_seconds += seed_seconds
        total_vectorized_seconds += vec_seconds
        all_identical = all_identical and identical
        traces_agree = traces_agree and motif_traces_agree
        per_motif[motif] = {
            "instances": seed_index.number_of_instances(),
            "candidate_edges": seed_index.number_of_candidate_edges(),
            "seed_seconds": round(seed_seconds, 6),
            "vectorized_seconds": round(vec_seconds, 6),
            "vectorized_speedup": round(speedup, 2),
            "workers_seconds": workers_seconds,
            "identical": identical,
            "greedy_trace_agrees": motif_traces_agree,
        }

    min_speedup = min(speedups)
    # the acceptance flag gates on the overall (summed) speedup: per-motif
    # builds take a few hundred ms each, where single-run noise swings a
    # per-motif ratio by 20%+ — the sum across motifs is stable enough for CI
    overall_speedup = (
        total_seed_seconds / total_vectorized_seconds
        if total_vectorized_seconds > 0
        else float("inf")
    )
    report = {
        "kind": "index_build",
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "seed": args.seed,
            "repeats": args.repeats,
            "motifs": list(args.motifs),
            "worker_counts": worker_counts,
            "cpu_count": os.cpu_count(),
        },
        "available_cpus": cpus,
        "motifs": per_motif,
        "min_vectorized_speedup": round(min_speedup, 2),
        "overall_vectorized_speedup": round(overall_speedup, 2),
        "vectorized_speedup_target": VECTORIZED_SPEEDUP_TARGET,
        "vectorized_speedup_met": overall_speedup >= VECTORIZED_SPEEDUP_TARGET,
        "parallel_identical": all_identical,
        "greedy_traces_agree": traces_agree,
        "workers_beat_serial": workers_beat_serial,
        # single-core boxes pay fan-out overhead for no parallelism; the
        # regression gate only enforces this flag once a multi-core run
        # committed it as true
        "workers_beat_serial_expected": cpus > 1,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=12_000)
    parser.add_argument("--attach", type=int, default=5, help="edges per new node")
    parser.add_argument("--targets", type=int, default=100)
    parser.add_argument(
        "--motifs",
        nargs="+",
        default=["triangle", "rectangle", "rectri"],
        help="motifs to build the index for (each measured separately)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2, 4],
        help="build_workers counts to measure (each checked bit-identical)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="min-of-N timing")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_index_build.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    config = report["config"]
    print(
        f"index build at n={config['nodes']}, m={config['edges']}, "
        f"|T|={config['targets']} (cpus={report['available_cpus']}):"
    )
    for motif, row in report["motifs"].items():
        workers = ", ".join(
            f"w{count}={seconds:.3f}s" for count, seconds in row["workers_seconds"].items()
        )
        print(
            f"  {motif:>10}: seed {row['seed_seconds']:6.3f}s  "
            f"vectorized {row['vectorized_seconds']:6.3f}s "
            f"({row['vectorized_speedup']:.2f}x)  {workers}  "
            f"identical={row['identical']} trace={row['greedy_trace_agrees']}"
        )
    print(
        f"  vectorized speedup: overall "
        f"{report['overall_vectorized_speedup']:.2f}x, per-motif min "
        f"{report['min_vectorized_speedup']:.2f}x "
        f"(target >= {report['vectorized_speedup_target']}x overall, "
        f"met={report['vectorized_speedup_met']}); workers beat serial: "
        f"{report['workers_beat_serial']} "
        f"(expected={report['workers_beat_serial_expected']})"
    )
    print(f"report written to {args.output}")
    ok = report["parallel_identical"] and report["greedy_traces_agree"]
    if not ok:
        print("ERROR: builds disagree — see the report", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
