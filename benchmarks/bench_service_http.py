"""HTTP serving benchmark (emits ``BENCH_service_http.json``).

Measures what the serving front (:mod:`repro.server`) adds on top of the
in-process session: one ``ProtectionServer`` bound to a loopback port,
exercised three ways over real sockets::

    serial      a distinct-request grid (methods x budgets), one at a time —
                the per-request floor: framing + admission + one solve
    concurrent  the same grid fanned out over --clients threads — queueing
                under load; on a single-CPU runner this measures admission
                overhead, not parallel speedup
    coalesced   a burst of --duplicates *identical* requests fired
                concurrently — they must coalesce onto one executor solve
                and all receive the same payload

and reports p50/p99 latency and queries/sec per phase, plus the coalescing
acceptance facts the regression gate enforces: the burst shared a single
solve (``coalesced_single_solve``), every burst payload was identical after
the per-caller ``coalesced`` flag (``responses_identical``), the serial
HTTP results match direct in-process solves (``traces_agree``), and the
burst beat solving the same duplicates serially by at least
``coalesce_speedup_target`` (``coalesce_speedup``).

Run with::

    PYTHONPATH=src python benchmarks/bench_service_http.py                   # committed scale
    PYTHONPATH=src python benchmarks/bench_service_http.py --nodes 400 --targets 6 \\
        --duplicates 4 --clients 4                                           # smoke scale
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.model import TPPProblem  # noqa: E402
from repro.datasets.targets import sample_degree_weighted_targets  # noqa: E402
from repro.graphs.generators import powerlaw_cluster_graph  # noqa: E402
from repro.server import ProtectionServer, ServingClient, serve_in_background  # noqa: E402
from repro.service import ProtectionRequest, ProtectionService  # noqa: E402

#: Acceptance bar: the duplicate burst must beat solving the duplicates
#: serially by at least this factor (coalescing turns N solves into ~1).
COALESCE_SPEEDUP_TARGET = 2.0

#: The distinct-request grid: method x budget, fixed seeds.
GRID_METHODS = ("SGB-Greedy", "CT-Greedy:TBD", "WT-Greedy:TBD", "RD")
GRID_BUDGETS = (2, 4, 6, 8)


def _percentile_ms(latencies: List[float], quantile: float) -> float:
    ordered = sorted(latencies)
    position = min(len(ordered) - 1, round(quantile * (len(ordered) - 1)))
    return round(ordered[position] * 1000.0, 3)


def _grid(initial_similarity: int) -> List[ProtectionRequest]:
    budgets = [
        max(1, min(budget, initial_similarity)) for budget in GRID_BUDGETS
    ]
    return [
        ProtectionRequest(method, budget, seed=seed)
        for seed, method in enumerate(GRID_METHODS)
        for budget in budgets
    ]


def _timed_solve(
    client: ServingClient, request: ProtectionRequest
) -> Tuple[float, Dict[str, object]]:
    started = time.perf_counter()
    payload = client.solve_payload(request)
    return time.perf_counter() - started, payload


def _phase_report(latencies: List[float], wall_seconds: float) -> Dict[str, float]:
    return {
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "qps": round(len(latencies) / wall_seconds, 3) if wall_seconds > 0 else 0.0,
        "wall_seconds": round(wall_seconds, 6),
    }


def run(args: argparse.Namespace) -> dict:
    graph = powerlaw_cluster_graph(args.nodes, args.attach, 0.4, seed=args.seed)
    targets = sample_degree_weighted_targets(graph, args.targets, seed=args.seed)
    problem = TPPProblem(graph, targets, motif=args.motif)
    problem.build_index()

    reference = ProtectionService(problem)
    initial = reference.pristine_similarity()
    requests = _grid(initial)
    # the duplicate is deliberately the most expensive request in play —
    # the paper's naive recount baseline, which rebuilds motif counts per
    # step: the longer the shared solve, the more work coalescing saves
    # the burst, and the committed speedup reflects that
    duplicate = ProtectionRequest(
        GRID_METHODS[0],
        max(1, min(args.duplicate_budget, initial)),
        engine="recount",
        seed=99,
    )

    server = ProtectionServer(
        ProtectionService(problem), solver_threads=args.solver_threads
    )
    with serve_in_background(server) as handle:
        client = ServingClient(handle.url, timeout=600.0)

        # -- serial: the per-request floor ------------------------------
        serial_latencies: List[float] = []
        serial_payloads: List[Dict[str, object]] = []
        started = time.perf_counter()
        for request in requests:
            latency, payload = _timed_solve(client, request)
            serial_latencies.append(latency)
            serial_payloads.append(payload)
        serial_wall = time.perf_counter() - started

        # -- concurrent: the same grid under client fan-out -------------
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            concurrent_runs = list(
                pool.map(lambda request: _timed_solve(client, request), requests)
            )
        concurrent_wall = time.perf_counter() - started
        concurrent_latencies = [latency for latency, _ in concurrent_runs]

        # -- coalesced: identical duplicates must share one solve -------
        # baseline: the same duplicate solved serially (no overlap — each
        # request pays a full solve; this is what coalescing saves)
        started = time.perf_counter()
        for _ in range(args.duplicates):
            client.solve_payload(duplicate)
        duplicate_serial_wall = time.perf_counter() - started

        # the burst is made deterministic rather than racy: the initiator
        # fires first, the joiners wait until the server reports the solve
        # in flight, then all fire at once through a barrier — so every
        # joiner demonstrably arrives while the shared solve is running
        solves_before = client.stats()["solves_executed"]
        joiners = args.duplicates - 1
        joiner_barrier = threading.Barrier(joiners + 1)

        def joiner(_index: int) -> Tuple[float, Dict[str, object]]:
            joiner_barrier.wait(timeout=60.0)
            return _timed_solve(client, duplicate)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.duplicates) as pool:
            initiator = pool.submit(_timed_solve, client, duplicate)
            while server.stats()["pending"] < 1 and not initiator.done():
                time.sleep(0.0002)
            joined = [pool.submit(joiner, index) for index in range(joiners)]
            joiner_barrier.wait(timeout=60.0)
            burst_runs = [initiator.result()] + [task.result() for task in joined]
        burst_wall = time.perf_counter() - started
        burst_solves = client.stats()["solves_executed"] - solves_before
        burst_latencies = [latency for latency, _ in burst_runs]
        burst_payloads = [payload for _, payload in burst_runs]

        stats = client.stats()

    coalesced_flags = sorted(
        payload["extra"]["server"].pop("coalesced") for payload in burst_payloads
    )
    responses_identical = all(
        payload == burst_payloads[0] for payload in burst_payloads
    )
    coalesced_single_solve = burst_solves == 1 and coalesced_flags == (
        [False] + [True] * (args.duplicates - 1)
    )
    coalesce_speedup = (
        duplicate_serial_wall / burst_wall if burst_wall > 0 else float("inf")
    )

    def protectors(payload: Dict[str, object]) -> Tuple[Tuple[int, int], ...]:
        return tuple(tuple(edge) for edge in payload["protectors"])

    traces_agree = all(
        protectors(payload) == reference.solve(request).protectors
        for request, payload in zip(requests, serial_payloads)
    )

    serial = _phase_report(serial_latencies, serial_wall)
    concurrent = _phase_report(concurrent_latencies, concurrent_wall)
    coalesced = _phase_report(burst_latencies, burst_wall)

    return {
        "kind": "service_http",
        "config": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "targets": len(targets),
            "motif": args.motif,
            "seed": args.seed,
            "num_requests": len(requests),
            "methods": list(GRID_METHODS),
            "budgets": list(GRID_BUDGETS),
            "clients": args.clients,
            "duplicates": args.duplicates,
            "solver_threads": args.solver_threads,
        },
        "serial_p50_ms": serial["p50_ms"],
        "serial_p99_ms": serial["p99_ms"],
        "serial_qps": serial["qps"],
        "serial_wall_seconds": serial["wall_seconds"],
        "concurrent_p50_ms": concurrent["p50_ms"],
        "concurrent_p99_ms": concurrent["p99_ms"],
        "concurrent_qps": concurrent["qps"],
        "concurrent_wall_seconds": concurrent["wall_seconds"],
        "coalesced_p50_ms": coalesced["p50_ms"],
        "coalesced_p99_ms": coalesced["p99_ms"],
        "coalesced_qps": coalesced["qps"],
        "coalesced_wall_seconds": coalesced["wall_seconds"],
        "duplicate_serial_wall_seconds": round(duplicate_serial_wall, 6),
        "burst_solves_executed": burst_solves,
        "coalesce_speedup": round(coalesce_speedup, 2),
        "coalesce_speedup_target": COALESCE_SPEEDUP_TARGET,
        "coalesce_speedup_met": coalesce_speedup >= COALESCE_SPEEDUP_TARGET,
        "coalesced_single_solve": coalesced_single_solve,
        "responses_identical": responses_identical,
        "traces_agree": traces_agree,
        "server_stats": {
            "requests_total": stats["requests_total"],
            "solves_executed": stats["solves_executed"],
            "coalesced_hits": stats["coalesced_hits"],
            "rejected": stats["rejected"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # committed scale: large enough that a solve dominates HTTP framing and
    # the duplicate burst reliably overlaps one in-flight solve, small
    # enough to finish in seconds on a single-CPU CI runner
    parser.add_argument("--nodes", type=int, default=2_000)
    parser.add_argument("--attach", type=int, default=4, help="edges per new node")
    parser.add_argument("--targets", type=int, default=12)
    parser.add_argument("--motif", default="triangle")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duplicates", type=int, default=12)
    parser.add_argument(
        "--duplicate-budget",
        type=int,
        default=1,
        help="budget of the duplicated recount-engine request (clamped to "
        "the initial similarity); even budget 1 pays the full initial motif "
        "recount, making the shared solve long enough to demonstrate "
        "coalescing deterministically",
    )
    parser.add_argument("--solver-threads", type=int, default=4)
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_service_http.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run(args)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    config = report["config"]
    print(
        f"{config['num_requests']} distinct requests, "
        f"{config['clients']} clients, {config['duplicates']} duplicates:"
    )
    print(
        f"  serial:     p50 {report['serial_p50_ms']:8.2f}ms  "
        f"p99 {report['serial_p99_ms']:8.2f}ms  {report['serial_qps']:7.2f} q/s"
    )
    print(
        f"  concurrent: p50 {report['concurrent_p50_ms']:8.2f}ms  "
        f"p99 {report['concurrent_p99_ms']:8.2f}ms  {report['concurrent_qps']:7.2f} q/s"
    )
    print(
        f"  coalesced:  p50 {report['coalesced_p50_ms']:8.2f}ms  "
        f"p99 {report['coalesced_p99_ms']:8.2f}ms  {report['coalesced_qps']:7.2f} q/s  "
        f"({report['burst_solves_executed']} solve(s) for "
        f"{config['duplicates']} callers)"
    )
    print(
        f"  coalesce speedup vs serial duplicates: "
        f"{report['coalesce_speedup']:.2f}x "
        f"(target >= {report['coalesce_speedup_target']}x, "
        f"met={report['coalesce_speedup_met']})"
    )
    print(
        f"  responses identical: {report['responses_identical']}; "
        f"single solve: {report['coalesced_single_solve']}; "
        f"traces agree with direct session: {report['traces_agree']}"
    )
    print(f"report written to {args.output}")
    ok = (
        report["responses_identical"]
        and report["traces_agree"]
        and report["burst_solves_executed"] >= 1
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
