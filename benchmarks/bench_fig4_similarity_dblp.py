"""Figure 4: evolution of existing target subgraphs vs budget (DBLP-scale).

Only the scalable (coverage-engine) implementations are exercised, as in the
paper; the budget axis is a fixed sweep rather than "up to k*" because on the
DBLP graph the paper also stops at k = 100 without reaching zero for the
denser motifs.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.similarity_evolution import run_similarity_evolution

DBLP_TARGETS = 12  # |T| at benchmark scale (paper: 50)

METHODS = (
    "SGB-Greedy",
    "CT-Greedy:DBD",
    "WT-Greedy:DBD",
    "CT-Greedy:TBD",
    "WT-Greedy:TBD",
    "RD",
    "RDT",
)
BUDGETS = tuple(range(1, 26, 4))


@pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri"])
def test_fig4_similarity_evolution_dblp(benchmark, dblp_graph, motif):
    config = ExperimentConfig(
        dataset="dblp",
        motifs=(motif,),
        num_targets=DBLP_TARGETS,
        repetitions=1,
        methods=METHODS,
        budgets=BUDGETS,
        seed=0,
    )

    def run():
        return run_similarity_evolution(config, motif, graph=dblp_graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    final = {method: values[-1] for method, values in result.curves.items()}
    benchmark.extra_info["initial_similarity"] = result.initial_similarity
    benchmark.extra_info["final_similarity"] = final

    # the greedy curves decrease fastest; RD barely moves on a large graph
    assert final["SGB-Greedy"] <= final["RD"]
    assert final["SGB-Greedy"] <= final["WT-Greedy:TBD"] + 1e-9
    assert result.curves["RD"][0] >= result.curves["SGB-Greedy"][0]
