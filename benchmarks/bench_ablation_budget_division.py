"""Ablation: budget division strategies (TBD vs DBD vs uniform).

The paper observes that TBD (budget proportional to each target's subgraph
count) protects better than DBD (proportional to the endpoints' degree
product) at equal total budget.  This ablation measures both, plus the
uniform split, for the CT and WT algorithms at a constrained budget.
"""

from __future__ import annotations

import pytest

from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.wt import wt_greedy

DIVISIONS = ("tbd", "dbd", "uniform")
ALGORITHMS = {"CT-Greedy": ct_greedy, "WT-Greedy": wt_greedy}


@pytest.mark.parametrize("division", DIVISIONS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_ablation_budget_division(
    benchmark, arenas_graph, arenas_targets, algorithm, division
):
    problem = TPPProblem(arenas_graph, arenas_targets, motif="rectangle")
    problem.build_index()
    budget = max(2, problem.initial_similarity() // 3)
    runner = ALGORITHMS[algorithm]

    result = benchmark.pedantic(
        lambda: runner(problem, budget, budget_division=division),
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["division"] = division
    benchmark.extra_info["final_similarity"] = result.final_similarity
    benchmark.extra_info["initial_similarity"] = result.initial_similarity

    assert result.budget_used <= budget
    assert result.final_similarity < result.initial_similarity


def test_ablation_tbd_protects_at_least_as_well_as_dbd(arenas_graph, arenas_targets):
    """Shape check from the paper's Fig. 3 discussion (not a timing benchmark)."""
    problem = TPPProblem(arenas_graph, arenas_targets, motif="rectangle")
    budget = max(2, problem.initial_similarity() // 3)
    tbd = ct_greedy(problem, budget, budget_division="tbd").final_similarity
    dbd = ct_greedy(problem, budget, budget_division="dbd").final_similarity
    assert tbd <= dbd + max(2, problem.initial_similarity() // 20)
