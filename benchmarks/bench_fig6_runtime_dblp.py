"""Figure 6: running time of the scalable algorithms on the DBLP-scale graph.

The naive variants are intractable at this scale (the paper reports they did
not finish within a week), so only the -R implementations and the random
baselines are benchmarked, exactly as in the paper's Fig. 6.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import random_deletion, random_target_subgraph_deletion
from repro.core.ct import ct_greedy
from repro.core.model import TPPProblem
from repro.core.sgb import sgb_greedy
from repro.core.wt import wt_greedy

BUDGET = 10

METHODS = {
    "SGB-Greedy-R": lambda problem: sgb_greedy(problem, BUDGET, engine="coverage"),
    "CT-Greedy-R:TBD": lambda problem: ct_greedy(
        problem, BUDGET, budget_division="tbd", engine="coverage"
    ),
    "WT-Greedy-R:TBD": lambda problem: wt_greedy(
        problem, BUDGET, budget_division="tbd", engine="coverage"
    ),
    "RD": lambda problem: random_deletion(problem, BUDGET, seed=0),
    "RDT": lambda problem: random_target_subgraph_deletion(problem, BUDGET, seed=0),
}


@pytest.mark.parametrize("motif", ["triangle", "rectangle", "rectri"])
@pytest.mark.parametrize("method", sorted(METHODS))
def test_fig6_scalable_runtime_dblp(benchmark, dblp_graph, dblp_targets, motif, method):
    problem = TPPProblem(dblp_graph, dblp_targets, motif=motif)
    problem.build_index()
    runner = METHODS[method]

    result = benchmark.pedantic(lambda: runner(problem), rounds=1, iterations=1)

    benchmark.extra_info["budget_used"] = result.budget_used
    benchmark.extra_info["initial_similarity"] = result.initial_similarity
    benchmark.extra_info["final_similarity"] = result.final_similarity

    # the random baselines never protect better than the greedy selections
    if method in ("RD", "RDT"):
        greedy = sgb_greedy(problem, BUDGET, engine="coverage")
        assert result.final_similarity >= greedy.final_similarity
