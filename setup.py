"""Setuptools shim.

Package metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works with older setuptools/pip combinations that lack
PEP 660 editable-install support (legacy ``setup.py develop`` fallback),
and to declare the *optional* native coverage-kernel extension: with a C
toolchain present the kernel is compiled at install time and
``repro._native`` loads the prebuilt artifact via ``ctypes``; without one
the install succeeds anyway and the kernel is compiled on first use into
the per-user cache (or the numpy fallback runs — bit-identical either
way).
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro._native._coverage_kernel",
            sources=["src/repro/_native/coverage_kernel.c"],
            optional=True,
        )
    ]
)
