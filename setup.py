"""Setuptools shim.

Package metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works with older setuptools/pip combinations that lack
PEP 660 editable-install support (legacy ``setup.py develop`` fallback).
"""

from setuptools import setup

setup()
